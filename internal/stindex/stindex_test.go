package stindex

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

func rect(a, b, c, d float64) geo.Rect {
	return geo.Rect{MinX: a, MinY: b, MaxX: c, MaxY: d}
}

func iv(a, b int64) geo.Interval { return geo.Interval{Start: a, End: b} }

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

func allIndexes() map[string]func() Index {
	return map[string]func() Index{
		"brute": func() Index { return NewBrute() },
		"grid":  func() Index { return NewGrid(100, 300) },
		"kd":    func() Index { return NewKDTree() },
		"rtree": func() Index { return NewRTree() },
	}
}

func fillRandom(idx Index, rng *rand.Rand, users, samples int) {
	for i := 0; i < samples; i++ {
		u := phl.UserID(rng.Intn(users))
		idx.Insert(u, pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200))))
	}
}

func TestEmptyIndexQueries(t *testing.T) {
	for name, mk := range allIndexes() {
		idx := mk()
		if idx.Len() != 0 {
			t.Errorf("%s: Len=%d", name, idx.Len())
		}
		box := geo.STBox{Area: rect(0, 0, 10, 10), Time: iv(0, 10)}
		if got := idx.UsersInBox(box); len(got) != 0 {
			t.Errorf("%s: UsersInBox on empty = %v", name, got)
		}
		if got := idx.KNearestUsers(pt(0, 0, 0), 3, geo.STMetric{}, nil); len(got) != 0 {
			t.Errorf("%s: KNearestUsers on empty = %v", name, got)
		}
	}
}

func TestUsersInBoxSimple(t *testing.T) {
	for name, mk := range allIndexes() {
		idx := mk()
		idx.Insert(1, pt(10, 10, 100))
		idx.Insert(2, pt(500, 500, 100))
		idx.Insert(3, pt(20, 20, 5000))
		idx.Insert(1, pt(15, 15, 110)) // duplicate user inside the box
		box := geo.STBox{Area: rect(0, 0, 50, 50), Time: iv(0, 200)}
		got := idx.UsersInBox(box)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != 1 || got[0] != 1 {
			t.Errorf("%s: UsersInBox = %v want [1]", name, got)
		}
		if n := idx.CountUsersInBox(box); n != 1 {
			t.Errorf("%s: CountUsersInBox = %d", name, n)
		}
	}
}

func TestUsersInBoxMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	brute := NewBrute()
	others := map[string]Index{"grid": NewGrid(100, 300), "kd": NewKDTree(), "rtree": NewRTree()}
	for i := 0; i < 3000; i++ {
		u := phl.UserID(rng.Intn(60))
		p := pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200)))
		brute.Insert(u, p)
		for _, idx := range others {
			idx.Insert(u, p)
		}
	}
	for trial := 0; trial < 100; trial++ {
		c := pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200)))
		w := rng.Float64() * 400
		dt := int64(rng.Intn(1200))
		box := geo.STBox{
			Area: rect(c.P.X-w, c.P.Y-w, c.P.X+w, c.P.Y+w),
			Time: iv(c.T-dt, c.T+dt),
		}
		want := asSet(brute.UsersInBox(box))
		for name, idx := range others {
			got := asSet(idx.UsersInBox(box))
			if !sameSet(want, got) {
				t.Fatalf("%s: UsersInBox mismatch: want %v got %v", name, want, got)
			}
			if n := idx.CountUsersInBox(box); n != len(want) {
				t.Fatalf("%s: CountUsersInBox = %d want %d", name, n, len(want))
			}
		}
	}
}

func TestKNearestUsersMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	brute := NewBrute()
	others := map[string]Index{"grid": NewGrid(150, 450), "kd": NewKDTree(), "rtree": NewRTree()}
	for i := 0; i < 2500; i++ {
		u := phl.UserID(rng.Intn(40))
		p := pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200)))
		brute.Insert(u, p)
		for _, idx := range others {
			idx.Insert(u, p)
		}
	}
	m := geo.STMetric{TimeScale: 0.5}
	for trial := 0; trial < 60; trial++ {
		q := pt(rng.Float64()*2000, rng.Float64()*2000, int64(rng.Intn(7200)))
		k := 1 + rng.Intn(10)
		exclude := map[phl.UserID]bool{phl.UserID(rng.Intn(40)): true}
		want := brute.KNearestUsers(q, k, m, exclude)
		for name, idx := range others {
			got := idx.KNearestUsers(q, k, m, exclude)
			if len(got) != len(want) {
				t.Fatalf("%s: got %d results want %d", name, len(got), len(want))
			}
			for i := range got {
				wd := m.Dist(want[i].Point, q)
				gd := m.Dist(got[i].Point, q)
				if math.Abs(wd-gd) > 1e-9 {
					t.Fatalf("%s: result %d distance %g want %g", name, i, gd, wd)
				}
				if exclude[got[i].User] {
					t.Fatalf("%s: excluded user %v returned", name, got[i].User)
				}
			}
			// Distinct users in the result.
			seen := map[phl.UserID]bool{}
			for _, e := range got {
				if seen[e.User] {
					t.Fatalf("%s: duplicate user %v in result", name, e.User)
				}
				seen[e.User] = true
			}
		}
	}
}

func TestKNearestFewerUsersThanK(t *testing.T) {
	for name, mk := range allIndexes() {
		idx := mk()
		idx.Insert(1, pt(0, 0, 0))
		idx.Insert(2, pt(10, 10, 10))
		got := idx.KNearestUsers(pt(0, 0, 0), 5, geo.STMetric{}, nil)
		if len(got) != 2 {
			t.Errorf("%s: got %d results want 2", name, len(got))
		}
	}
}

func TestKNearestOrdering(t *testing.T) {
	for name, mk := range allIndexes() {
		idx := mk()
		idx.Insert(1, pt(100, 0, 0))
		idx.Insert(2, pt(10, 0, 0))
		idx.Insert(3, pt(50, 0, 0))
		got := idx.KNearestUsers(pt(0, 0, 0), 3, geo.STMetric{}, nil)
		if len(got) != 3 || got[0].User != 2 || got[1].User != 3 || got[2].User != 1 {
			t.Errorf("%s: ordering wrong: %v", name, got)
		}
	}
}

func TestSmallestEnclosingBox(t *testing.T) {
	for name, mk := range allIndexes() {
		idx := mk()
		// Requester 0 plus four nearby users.
		idx.Insert(1, pt(10, 0, 5))
		idx.Insert(2, pt(0, 20, 10))
		idx.Insert(3, pt(-30, 0, 0))
		idx.Insert(4, pt(1000, 1000, 3000))
		q := pt(0, 0, 0)
		exclude := map[phl.UserID]bool{0: true}
		box, members, ok := SmallestEnclosingBox(idx, q, 3, geo.STMetric{TimeScale: 1}, exclude)
		if !ok {
			t.Fatalf("%s: expected success", name)
		}
		if !box.Contains(q) {
			t.Errorf("%s: box %v must contain the query point", name, box)
		}
		if len(members) != 3 {
			t.Fatalf("%s: got %d members", name, len(members))
		}
		for _, mbr := range members {
			if !box.Contains(mbr.Point) {
				t.Errorf("%s: box misses member %v", name, mbr)
			}
			if mbr.User == 4 {
				t.Errorf("%s: distant user chosen over near ones", name)
			}
		}
		if n := idx.CountUsersInBox(box); n < 3 {
			t.Errorf("%s: box contains only %d users", name, n)
		}
		// Too few users for k=10.
		if _, _, ok := SmallestEnclosingBox(idx, q, 10, geo.STMetric{}, exclude); ok {
			t.Errorf("%s: expected failure with k=10", name)
		}
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	g := NewGrid(100, 300)
	g.Insert(1, pt(-250, -250, -500))
	g.Insert(2, pt(-10, -10, -5))
	box := geo.STBox{Area: rect(-300, -300, -200, -200), Time: iv(-600, -400)}
	if got := g.UsersInBox(box); len(got) != 1 || got[0] != 1 {
		t.Fatalf("UsersInBox=%v", got)
	}
	got := g.KNearestUsers(pt(-240, -240, -490), 2, geo.STMetric{}, nil)
	if len(got) != 2 || got[0].User != 1 {
		t.Fatalf("KNearestUsers=%v", got)
	}
}

func TestGridPanicsOnBadDimensions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGrid(0, 300)
}

func TestLen(t *testing.T) {
	for name, mk := range allIndexes() {
		idx := mk()
		rng := rand.New(rand.NewSource(1))
		fillRandom(idx, rng, 10, 123)
		if idx.Len() != 123 {
			t.Errorf("%s: Len=%d want 123", name, idx.Len())
		}
	}
}

func asSet(ids []phl.UserID) map[phl.UserID]bool {
	s := map[phl.UserID]bool{}
	for _, id := range ids {
		s[id] = true
	}
	return s
}

func sameSet(a, b map[phl.UserID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestGridKNearestAllUsersFast(t *testing.T) {
	// Regression: when k reaches the whole population the shell search
	// must not sweep the empty cube (the data here spans 240 time
	// buckets, so a naive sweep enumerates millions of cells).
	g := NewGrid(500, 1800)
	rng := rand.New(rand.NewSource(13))
	const users = 20
	for i := 0; i < 5000; i++ {
		g.Insert(phl.UserID(rng.Intn(users)), pt(rng.Float64()*8000, rng.Float64()*8000, int64(rng.Intn(5*86400))))
	}
	done := make(chan []UserPoint, 1)
	go func() {
		done <- g.KNearestUsers(pt(4000, 4000, 2*86400), users+10, geo.STMetric{TimeScale: 1}, nil)
	}()
	select {
	case got := <-done:
		if len(got) != users {
			t.Fatalf("got %d users want %d", len(got), users)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("KNearestUsers with k >= population did not terminate promptly")
	}
	// Cross-check against brute force.
	b := NewBrute()
	rng = rand.New(rand.NewSource(13))
	for i := 0; i < 5000; i++ {
		b.Insert(phl.UserID(rng.Intn(users)), pt(rng.Float64()*8000, rng.Float64()*8000, int64(rng.Intn(5*86400))))
	}
	m := geo.STMetric{TimeScale: 1}
	want := b.KNearestUsers(pt(4000, 4000, 2*86400), users+10, m, nil)
	got := g.KNearestUsers(pt(4000, 4000, 2*86400), users+10, m, nil)
	if len(got) != len(want) {
		t.Fatalf("got %d want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(m.Dist(got[i].Point, pt(4000, 4000, 2*86400))-m.Dist(want[i].Point, pt(4000, 4000, 2*86400))) > 1e-9 {
			t.Fatalf("result %d differs from brute force", i)
		}
	}
}
