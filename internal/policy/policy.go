// Package policy implements the rule-based privacy-policy
// specifications of the paper's §3: qualitative levels serve most
// users, while "more expert users can have access to more involved
// rule-based policy specifications". A policy set is an ordered list of
// rules; the first rule whose conditions match a request decides the
// privacy parameters for the exposure that request starts.
//
// The textual format, one rule per line:
//
//	rule "commute" when service=navigation weekday time=[07:00,09:30] then k=10 theta=0.3 suppress
//	rule "downtown" when area=[0,2000]x[0,2000] then k=8 theta=0.4 kprime=12
//	default level=medium
//
// Conditions (all must hold): service=<name>, weekday, weekend,
// time=[a,b] (daily window), area=[x1,x2]x[y1,y2]. Actions: k=<n>,
// theta=<f>, kprime=<n>, step=<n>, suppress, notify. The default line
// names a qualitative level (low/medium/high) used when no rule
// matches.
package policy

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/lbqid"
	"histanon/internal/tgran"
	"histanon/internal/ts"
)

// Condition is one conjunct of a rule's when-clause.
type Condition interface {
	Matches(service string, p geo.STPoint) bool
	String() string
}

type serviceCond struct{ name string }

func (c serviceCond) Matches(service string, _ geo.STPoint) bool { return service == c.name }
func (c serviceCond) String() string                             { return "service=" + c.name }

type weekdayCond struct{ weekend bool }

func (c weekdayCond) Matches(_ string, p geo.STPoint) bool {
	_, isBusiness := tgran.WeekdaysG.GranuleOf(p.T)
	return isBusiness != c.weekend
}

func (c weekdayCond) String() string {
	if c.weekend {
		return "weekend"
	}
	return "weekday"
}

type timeCond struct{ window tgran.UInterval }

func (c timeCond) Matches(_ string, p geo.STPoint) bool { return c.window.Contains(p.T) }
func (c timeCond) String() string                       { return "time=" + c.window.String() }

type areaCond struct{ area geo.Rect }

func (c areaCond) Matches(_ string, p geo.STPoint) bool { return c.area.Contains(p.P) }
func (c areaCond) String() string                       { return fmt.Sprintf("area=%s", c.area) }

// Rule pairs conditions with the policy they select.
type Rule struct {
	Name   string
	Conds  []Condition
	Policy ts.Policy
}

// Matches reports whether every condition holds.
func (r *Rule) Matches(service string, p geo.STPoint) bool {
	for _, c := range r.Conds {
		if !c.Matches(service, p) {
			return false
		}
	}
	return true
}

// Set is an ordered rule list with a default policy. It implements the
// trusted server's per-request policy resolution.
type Set struct {
	Rules   []Rule
	Default ts.Policy
}

// Resolve returns the policy of the first matching rule, or the
// default.
func (s *Set) Resolve(service string, p geo.STPoint) ts.Policy {
	for i := range s.Rules {
		if s.Rules[i].Matches(service, p) {
			return s.Rules[i].Policy
		}
	}
	return s.Default
}

// Parse reads a policy-set definition. Blank lines and '#' comments are
// ignored.
func Parse(r io.Reader) (*Set, error) {
	set := &Set{Default: ts.PolicyForLevel(ts.Medium)}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "rule"):
			rule, err := parseRule(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			set.Rules = append(set.Rules, rule)
		case strings.HasPrefix(line, "default"):
			p, err := parseDefault(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			set.Default = p
		default:
			return nil, fmt.Errorf("line %d: unrecognized directive %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return set, nil
}

// ParseString is Parse over an in-memory definition.
func ParseString(s string) (*Set, error) { return Parse(strings.NewReader(s)) }

func parseRule(line string) (Rule, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "rule"))
	var rule Rule
	if strings.HasPrefix(rest, `"`) {
		end := strings.Index(rest[1:], `"`)
		if end < 0 {
			return rule, fmt.Errorf("unterminated rule name")
		}
		rule.Name = rest[1 : 1+end]
		rest = strings.TrimSpace(rest[end+2:])
	}
	whenIdx := strings.Index(rest, "when")
	thenIdx := strings.Index(rest, "then")
	if whenIdx != 0 || thenIdx < 0 {
		return rule, fmt.Errorf("rule needs 'when ... then ...'")
	}
	condStr := strings.TrimSpace(rest[len("when"):thenIdx])
	actStr := strings.TrimSpace(rest[thenIdx+len("then"):])

	for _, tok := range strings.Fields(condStr) {
		cond, err := parseCondition(tok)
		if err != nil {
			return rule, err
		}
		rule.Conds = append(rule.Conds, cond)
	}
	if len(rule.Conds) == 0 {
		return rule, fmt.Errorf("rule has no conditions")
	}
	p, err := parseActions(actStr)
	if err != nil {
		return rule, err
	}
	rule.Policy = p
	return rule, nil
}

func parseCondition(tok string) (Condition, error) {
	switch {
	case tok == "weekday":
		return weekdayCond{}, nil
	case tok == "weekend":
		return weekdayCond{weekend: true}, nil
	case strings.HasPrefix(tok, "service="):
		name := strings.TrimPrefix(tok, "service=")
		if name == "" {
			return nil, fmt.Errorf("empty service name")
		}
		return serviceCond{name: name}, nil
	case strings.HasPrefix(tok, "time="):
		w, err := tgran.ParseUInterval(strings.TrimPrefix(tok, "time="))
		if err != nil {
			return nil, err
		}
		return timeCond{window: w}, nil
	case strings.HasPrefix(tok, "area="):
		r, err := lbqid.ParseRect(strings.TrimPrefix(tok, "area="))
		if err != nil {
			return nil, err
		}
		return areaCond{area: r}, nil
	default:
		return nil, fmt.Errorf("unknown condition %q", tok)
	}
}

func parseActions(s string) (ts.Policy, error) {
	var p ts.Policy
	kprime, step := 0, 0
	for _, tok := range strings.Fields(s) {
		switch {
		case strings.HasPrefix(tok, "k="):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "k="))
			if err != nil || n < 1 {
				return p, fmt.Errorf("bad k in %q", tok)
			}
			p.K = n
		case strings.HasPrefix(tok, "theta="):
			f, err := strconv.ParseFloat(strings.TrimPrefix(tok, "theta="), 64)
			if err != nil || f < 0 || f > 1 {
				return p, fmt.Errorf("bad theta in %q", tok)
			}
			p.Theta = f
		case strings.HasPrefix(tok, "kprime="):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "kprime="))
			if err != nil || n < 1 {
				return p, fmt.Errorf("bad kprime in %q", tok)
			}
			kprime = n
		case strings.HasPrefix(tok, "step="):
			n, err := strconv.Atoi(strings.TrimPrefix(tok, "step="))
			if err != nil || n < 1 {
				return p, fmt.Errorf("bad step in %q", tok)
			}
			step = n
		case tok == "suppress":
			p.SuppressAtRisk = true
		case tok == "notify":
			p.SuppressAtRisk = false
		default:
			return p, fmt.Errorf("unknown action %q", tok)
		}
	}
	if p.K == 0 {
		return p, fmt.Errorf("rule must set k")
	}
	if kprime > 0 {
		p.Decay = generalize.DecaySchedule{Target: p.K, Initial: kprime, Step: step}
	}
	return p, nil
}

func parseDefault(line string) (ts.Policy, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "default"))
	if !strings.HasPrefix(rest, "level=") {
		return ts.Policy{}, fmt.Errorf("default needs level=<low|medium|high>")
	}
	switch strings.TrimPrefix(rest, "level=") {
	case "low":
		return ts.PolicyForLevel(ts.Low), nil
	case "medium":
		return ts.PolicyForLevel(ts.Medium), nil
	case "high":
		return ts.PolicyForLevel(ts.High), nil
	default:
		return ts.Policy{}, fmt.Errorf("unknown level in %q", rest)
	}
}
