package policy

import (
	"testing"

	"histanon/internal/geo"
	"histanon/internal/sp"
	"histanon/internal/tgran"
	"histanon/internal/ts"
)

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

const sample = `
# commuters get a strict policy on navigation during rush hour
rule "rush" when service=navigation weekday time=[07:00,09:30] then k=10 theta=0.3 kprime=14 step=2 suppress
rule "downtown" when area=[0,2000]x[0,2000] then k=8 theta=0.4
rule "weekend" when weekend then k=2 theta=0.8 notify
default level=medium
`

func mustParse(t *testing.T, s string) *Set {
	t.Helper()
	set, err := ParseString(s)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	return set
}

func TestParseSample(t *testing.T) {
	set := mustParse(t, sample)
	if len(set.Rules) != 3 {
		t.Fatalf("rules=%d", len(set.Rules))
	}
	r := set.Rules[0]
	if r.Name != "rush" || len(r.Conds) != 3 {
		t.Fatalf("rule 0: %+v", r)
	}
	if r.Policy.K != 10 || r.Policy.Theta != 0.3 || !r.Policy.SuppressAtRisk {
		t.Fatalf("rule 0 policy: %+v", r.Policy)
	}
	if r.Policy.Decay.Initial != 14 || r.Policy.Decay.Step != 2 || r.Policy.Decay.Target != 10 {
		t.Fatalf("rule 0 decay: %+v", r.Policy.Decay)
	}
	if set.Default.K != ts.PolicyForLevel(ts.Medium).K {
		t.Fatalf("default: %+v", set.Default)
	}
}

func TestResolveOrder(t *testing.T) {
	set := mustParse(t, sample)
	// Monday 8am downtown via navigation: "rush" fires first even though
	// "downtown" also matches.
	monday8 := pt(500, 500, 8*tgran.Hour)
	if got := set.Resolve("navigation", monday8); got.K != 10 {
		t.Fatalf("rush rule not selected: %+v", got)
	}
	// Same place and time, different service: "downtown".
	if got := set.Resolve("weather", monday8); got.K != 8 {
		t.Fatalf("downtown rule not selected: %+v", got)
	}
	// Saturday far away: "weekend".
	saturday := pt(5000, 5000, 5*tgran.Day+12*tgran.Hour)
	if got := set.Resolve("weather", saturday); got.K != 2 {
		t.Fatalf("weekend rule not selected: %+v", got)
	}
	// Monday far away outside rush hour: default.
	monday14 := pt(5000, 5000, 14*tgran.Hour)
	if got := set.Resolve("weather", monday14); got.K != set.Default.K {
		t.Fatalf("default not selected: %+v", got)
	}
}

func TestConditionSemantics(t *testing.T) {
	set := mustParse(t, `rule "w" when weekday then k=3`)
	if got := set.Resolve("x", pt(0, 0, 8*tgran.Hour)); got.K != 3 {
		t.Fatal("Monday must be a weekday")
	}
	if got := set.Resolve("x", pt(0, 0, 6*tgran.Day)); got.K == 3 {
		t.Fatal("Sunday must not be a weekday")
	}
	set = mustParse(t, `rule "t" when time=[22:00,23:00] then k=4`)
	if got := set.Resolve("x", pt(0, 0, 22*tgran.Hour+60)); got.K != 4 {
		t.Fatal("22:01 must match the window")
	}
	if got := set.Resolve("x", pt(0, 0, 12*tgran.Hour)); got.K == 4 {
		t.Fatal("noon must not match the window")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`bogus line`,
		`rule "x" then k=3`,                       // no when
		`rule "x" when then k=3`,                  // empty conditions
		`rule "x" when weekday then`,              // no k
		`rule "x" when weekday then k=0`,          // bad k
		`rule "x" when weekday then k=3 theta=2`,  // bad theta
		`rule "x" when nope then k=3`,             // unknown condition
		`rule "x" when service= then k=3`,         // empty service
		`rule "x" when time=[x,y] then k=3`,       // bad window
		`rule "x" when area=[0,1] then k=3`,       // bad area
		`rule "x" when weekday then k=3 frobnify`, // unknown action
		`rule "x when weekday then k=3`,           // unterminated name
		`default level=extreme`,
		`default k=3`,
	}
	for _, s := range bad {
		if _, err := ParseString(s); err == nil {
			t.Errorf("expected error for %q", s)
		}
	}
}

func TestEmptySetUsesDefault(t *testing.T) {
	set := mustParse(t, "")
	if got := set.Resolve("x", pt(0, 0, 0)); got.K != ts.PolicyForLevel(ts.Medium).K {
		t.Fatalf("empty set default: %+v", got)
	}
}

// TestIntegrationWithTrustedServer exercises the resolver end to end:
// the rush-hour rule must suppress service when the user is at risk,
// while the weekend rule merely notifies.
func TestIntegrationWithTrustedServer(t *testing.T) {
	set := mustParse(t, `
rule "rush" when service=navigation weekday time=[07:00,09:30] then k=10 suppress
default level=low
`)
	provider := sp.NewProvider()
	server := ts.New(ts.Config{Policies: set}, provider)
	const lbqidDef = `
lbqid "spot" {
    element area [0,400]x[0,400] time [06:00,23:00]
    recurrence 1.Days
}`
	if err := server.AddLBQIDSpec(0, lbqidDef); err != nil {
		t.Fatal(err)
	}
	// Nobody else exists: generalization fails, unlinking fails.
	// Rush-hour navigation => suppressed.
	dec := server.Request(0, pt(100, 100, 8*tgran.Hour), "navigation", nil)
	if !dec.AtRisk || !dec.Suppressed {
		t.Fatalf("rush rule must suppress: %+v", dec)
	}
	// Weekend request under the default (low, notify-only) policy:
	// at risk but still forwarded.
	dec = server.Request(0, pt(100, 100, 5*tgran.Day+8*tgran.Hour), "navigation", nil)
	if !dec.AtRisk || dec.Suppressed || !dec.Forwarded {
		t.Fatalf("default policy must forward: %+v", dec)
	}
}

func TestConditionStrings(t *testing.T) {
	set := mustParse(t, sample)
	for _, r := range set.Rules {
		for _, c := range r.Conds {
			if c.String() == "" {
				t.Fatalf("condition of %q renders empty", r.Name)
			}
		}
	}
}
