// Package deploy implements the paper's second proposed use of the
// framework (§7, direction (b)): "to evaluate if the privacy policies
// that a location-based service guarantees are sufficient to deploy the
// service in a certain area. This may be achieved by considering, for
// example, the typical density of users, their movement patterns, their
// concerns about privacy, as well as the spatio-temporal tolerance
// constraints of the service and the presence of natural mix-zones in
// the area."
//
// Analyze samples representative request points from the area's
// movement data and asks, for each: could Algorithm 1 preserve
// historical k-anonymity within the service's tolerance here, and if
// not, is an unlinking opportunity (a natural mix zone nearby, or
// enough diverging trajectories for an on-demand one) available?
package deploy

import (
	"fmt"
	"math"

	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/metrics"
	"histanon/internal/mixzone"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// Input is the deployment question.
type Input struct {
	// Store holds representative movement data for the area.
	Store phl.Storer
	// Index must cover the same data (built by BuildIndex when nil).
	Index stindex.Index
	// Metric is the Algorithm-1 3D metric.
	Metric geo.STMetric
	// K is the anonymity value users will demand.
	K int
	// Tolerance is the service's coarsest useful resolution.
	Tolerance generalize.Tolerance
	// Zones are the area's natural mix zones (may be nil).
	Zones *mixzone.Registry
	// ZoneReach is how far (meters) users can be expected to detour to a
	// natural mix zone. Zero means 1000.
	ZoneReach float64
	// Divergence configures the on-demand mix-zone test.
	Divergence mixzone.Divergence
	// SampleEvery subsamples history points as request sites (every n-th
	// point per user). Zero means 50.
	SampleEvery int
	// FeasibleTarget is the feasibility fraction required for a
	// "deployable" verdict. Zero means 0.9.
	FeasibleTarget float64
}

// Verdict is the analyzer's conclusion.
type Verdict int

// The possible conclusions, from best to worst.
const (
	// Deployable: generalization alone preserves anonymity at the target
	// rate.
	Deployable Verdict = iota
	// DeployableWithUnlinking: failures occur but unlinking cover
	// (natural or on-demand zones) fills the gap to the target rate.
	DeployableWithUnlinking
	// NotDeployable: even counting unlinking cover the target rate is
	// missed — the service's constraints are too strict for the area's
	// density and movement patterns.
	NotDeployable
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Deployable:
		return "deployable"
	case DeployableWithUnlinking:
		return "deployable-with-unlinking"
	case NotDeployable:
		return "not-deployable"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Report is the analyzer's output.
type Report struct {
	// Samples is the number of request sites evaluated.
	Samples int
	// FeasibleRate is the fraction where Algorithm 1 fits the tolerance.
	FeasibleRate float64
	// CloakArea and CloakWindow summarize the anonymity-preserving boxes
	// (pre-clamping) over all samples.
	CloakArea   *metrics.Summary
	CloakWindow *metrics.Summary
	// NaturalZoneRate is the fraction of samples within ZoneReach of a
	// registered mix zone.
	NaturalZoneRate float64
	// OnDemandRate is the fraction of samples where k−1 diverging
	// trajectories would support an on-demand zone.
	OnDemandRate float64
	// CoveredRate is the fraction of samples that are feasible OR have
	// some unlinking opportunity.
	CoveredRate float64
	// Verdict is the conclusion at the configured target.
	Verdict Verdict
}

// BuildIndex constructs the default grid index over a store.
func BuildIndex(store phl.Storer) stindex.Index {
	idx := stindex.NewGrid(500, 1800)
	for _, u := range store.Users() {
		for _, p := range store.History(u).Points() {
			idx.Insert(u, p)
		}
	}
	return idx
}

// Analyze runs the deployment-area evaluation.
func Analyze(in Input) (Report, error) {
	if in.Store == nil || in.Store.NumUsers() == 0 {
		return Report{}, fmt.Errorf("deploy: no movement data")
	}
	if in.K < 2 {
		return Report{}, fmt.Errorf("deploy: k must be at least 2, got %d", in.K)
	}
	if in.Index == nil {
		in.Index = BuildIndex(in.Store)
	}
	sampleEvery := in.SampleEvery
	if sampleEvery == 0 {
		sampleEvery = 50
	}
	zoneReach := in.ZoneReach
	if zoneReach == 0 {
		zoneReach = 1000
	}
	target := in.FeasibleTarget
	if target == 0 {
		target = 0.9
	}

	g := &generalize.Generalizer{Index: in.Index, Store: in.Store, Metric: in.Metric}
	rep := Report{CloakArea: &metrics.Summary{}, CloakWindow: &metrics.Summary{}}
	feasible, natural, onDemand, covered := 0, 0, 0, 0

	for _, u := range in.Store.Users() {
		pts := in.Store.History(u).Points()
		for i := 0; i < len(pts); i += sampleEvery {
			q := pts[i]
			rep.Samples++

			res, ok := g.FirstElement(q, u, in.K, in.Tolerance)
			siteFeasible := ok && res.HKAnonymity
			if ok {
				// Record the pre-clamp resolution cost by re-running
				// without constraints (cheap relative to the first call's
				// index work being warm).
				free, _ := g.FirstElement(q, u, in.K, generalize.Unlimited)
				rep.CloakArea.Add(free.Box.Area.Area())
				rep.CloakWindow.Add(float64(free.Box.Time.Duration()))
			}
			if siteFeasible {
				feasible++
			}

			hasNatural := false
			if in.Zones != nil {
				for _, z := range in.Zones.Zones() {
					if z.Area.DistToPoint(q.P) <= zoneReach {
						hasNatural = true
						break
					}
				}
			}
			if hasNatural {
				natural++
			}
			_, hasOnDemand := mixzone.FindDiverging(
				in.Index, in.Store, u, q.P, q.T, in.K-1, in.Divergence, in.Metric)
			if hasOnDemand {
				onDemand++
			}
			if siteFeasible || hasNatural || hasOnDemand {
				covered++
			}
		}
	}

	n := float64(rep.Samples)
	if n == 0 {
		return Report{}, fmt.Errorf("deploy: no samples (histories shorter than SampleEvery)")
	}
	rep.FeasibleRate = float64(feasible) / n
	rep.NaturalZoneRate = float64(natural) / n
	rep.OnDemandRate = float64(onDemand) / n
	rep.CoveredRate = float64(covered) / n

	switch {
	case rep.FeasibleRate >= target:
		rep.Verdict = Deployable
	case rep.CoveredRate >= target:
		rep.Verdict = DeployableWithUnlinking
	default:
		rep.Verdict = NotDeployable
	}
	return rep, nil
}

// Format renders a human-readable report.
func (r Report) Format() string {
	area := math.NaN()
	window := math.NaN()
	if r.CloakArea != nil {
		area = r.CloakArea.Mean() / 1e6
	}
	if r.CloakWindow != nil {
		window = r.CloakWindow.Mean()
	}
	return fmt.Sprintf(
		"samples: %d\nfeasible within tolerance: %.1f%%\n"+
			"expected cloak: %.2f km^2, %.0f s\n"+
			"natural mix-zone reach: %.1f%%\non-demand zone availability: %.1f%%\n"+
			"covered (feasible or unlinkable): %.1f%%\nverdict: %s",
		r.Samples, 100*r.FeasibleRate, area, window,
		100*r.NaturalZoneRate, 100*r.OnDemandRate, 100*r.CoveredRate, r.Verdict)
}
