package deploy

import (
	"strings"
	"testing"

	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/mixzone"
	"histanon/internal/mobility"
	"histanon/internal/phl"
)

func cityStore(users, days int) *phl.Store {
	cfg := mobility.DefaultConfig()
	cfg.Users = users
	cfg.Days = days
	world := mobility.Generate(cfg)
	store := phl.NewStore()
	for _, ev := range world.Events {
		store.Record(ev.User, ev.Point)
	}
	return store
}

func TestAnalyzeDeployableUnlimited(t *testing.T) {
	store := cityStore(60, 5)
	rep, err := Analyze(Input{
		Store:     store,
		Metric:    geo.STMetric{TimeScale: 1},
		K:         3,
		Tolerance: generalize.Unlimited,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples == 0 {
		t.Fatal("no samples")
	}
	if rep.FeasibleRate < 0.99 {
		t.Fatalf("unlimited tolerance must be ~always feasible: %.2f", rep.FeasibleRate)
	}
	if rep.Verdict != Deployable {
		t.Fatalf("verdict=%v", rep.Verdict)
	}
	if rep.CloakArea.N() == 0 || rep.CloakArea.Mean() <= 0 {
		t.Fatal("cloak statistics missing")
	}
}

func TestAnalyzeNotDeployableTightTolerance(t *testing.T) {
	store := cityStore(40, 5)
	rep, err := Analyze(Input{
		Store:  store,
		Metric: geo.STMetric{TimeScale: 1},
		K:      10,
		Tolerance: generalize.Tolerance{
			MaxWidth: 20, MaxHeight: 20, MaxDuration: 10,
		},
		// No zones and an impossible divergence bar: no unlinking cover.
		Divergence: mixzone.Divergence{MinAngle: 3.14},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FeasibleRate > 0.2 {
		t.Fatalf("20m tolerance at k=10 should rarely be feasible: %.2f", rep.FeasibleRate)
	}
	if rep.Verdict != NotDeployable {
		t.Fatalf("verdict=%v (covered=%.2f)", rep.Verdict, rep.CoveredRate)
	}
}

func TestAnalyzeUnlinkingRescuesVerdict(t *testing.T) {
	store := cityStore(40, 5)
	in := Input{
		Store:  store,
		Metric: geo.STMetric{TimeScale: 1},
		K:      8,
		Tolerance: generalize.Tolerance{
			MaxWidth: 50, MaxHeight: 50, MaxDuration: 30,
		},
		Divergence: mixzone.Divergence{MinAngle: 3.14},
	}
	base, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	// Blanket the whole city with natural mix zones: the verdict must
	// improve to deployable-with-unlinking.
	in.Zones = mixzone.NewRegistry(mixzone.Zone{
		Name: "downtown",
		Area: geo.Rect{MinX: -1e6, MinY: -1e6, MaxX: 1e6, MaxY: 1e6},
	})
	rescued, err := Analyze(in)
	if err != nil {
		t.Fatal(err)
	}
	if base.Verdict == Deployable {
		t.Fatalf("precondition failed: base should not be plainly deployable")
	}
	if rescued.Verdict != DeployableWithUnlinking {
		t.Fatalf("verdict=%v (natural=%.2f covered=%.2f)",
			rescued.Verdict, rescued.NaturalZoneRate, rescued.CoveredRate)
	}
	if rescued.NaturalZoneRate < 0.99 {
		t.Fatalf("zone rate=%.2f", rescued.NaturalZoneRate)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(Input{}); err == nil {
		t.Fatal("empty input must fail")
	}
	store := phl.NewStore()
	store.Record(0, geo.STPoint{T: 1})
	if _, err := Analyze(Input{Store: store, K: 1}); err == nil {
		t.Fatal("k=1 must fail")
	}
}

func TestVerdictString(t *testing.T) {
	if Deployable.String() != "deployable" ||
		DeployableWithUnlinking.String() != "deployable-with-unlinking" ||
		NotDeployable.String() != "not-deployable" {
		t.Fatal("verdict names wrong")
	}
	if Verdict(9).String() == "" {
		t.Fatal("unknown verdict must render")
	}
}

func TestReportFormat(t *testing.T) {
	store := cityStore(30, 3)
	rep, err := Analyze(Input{
		Store: store, Metric: geo.STMetric{TimeScale: 1}, K: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Format()
	for _, want := range []string{"samples:", "feasible", "verdict:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Format misses %q:\n%s", want, s)
		}
	}
}
