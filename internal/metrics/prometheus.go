// Prometheus text exposition (format version 0.0.4) over a dependency-
// free registry. A Registry is a fixed catalog of metric families wired
// to live data sources — value callbacks, CounterVecs, Histograms —
// rendered on demand by WritePrometheus; nothing is cached between
// scrapes.

package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Labels is a fixed label set attached to one registered series.
type Labels map[string]string

type familyKind int

const (
	kindCounter familyKind = iota
	kindGauge
	kindHistogram
)

func (k familyKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one registered time series (or sub-family, for vecs).
type series struct {
	labels Labels
	intFn  func() int64   // counters
	fltFn  func() float64 // gauges
	hist   *Histogram
	vec    *CounterVec // counter vec: label values appended dynamically
}

type family struct {
	name   string
	help   string
	kind   familyKind
	series []*series
}

// Registry is an ordered catalog of metric families for exposition. All
// Register* methods panic on malformed or conflicting registrations
// (they run at wiring time, not on the request path) and are safe for
// concurrent use with WritePrometheus.
type Registry struct {
	mu        sync.Mutex
	families  []*family
	byName    map[string]*family
	exemplars bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// SetExemplars controls whether WritePrometheus appends OpenMetrics
// exemplar annotations (`# {trace_id="…"} value`) to histogram bucket
// lines. Off by default: strict 0.0.4 parsers reject the suffix.
func (r *Registry) SetExemplars(on bool) {
	r.mu.Lock()
	r.exemplars = on
	r.mu.Unlock()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func (r *Registry) familyFor(name, help string, kind familyKind) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("metrics: %s already registered as %s, not %s", name, f.kind, kind))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

func checkLabels(labels Labels) {
	for k := range labels {
		if !validName(k) {
			panic(fmt.Sprintf("metrics: invalid label name %q", k))
		}
	}
}

// RegisterCounterFunc exposes fn as a counter series. Registering the
// same name again with different labels adds a series to the family.
func (r *Registry) RegisterCounterFunc(name, help string, labels Labels, fn func() int64) {
	checkLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindCounter)
	f.series = append(f.series, &series{labels: labels, intFn: fn})
}

// RegisterGaugeFunc exposes fn as a gauge series.
func (r *Registry) RegisterGaugeFunc(name, help string, labels Labels, fn func() float64) {
	checkLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindGauge)
	f.series = append(f.series, &series{labels: labels, fltFn: fn})
}

// RegisterHistogram exposes h under the family name; several histograms
// may share a family when distinguished by labels (e.g. one per
// pipeline stage).
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	checkLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindHistogram)
	f.series = append(f.series, &series{labels: labels, hist: h})
}

// RegisterCounterVec exposes every series of vec under the family name;
// extra fixed labels, when given, are merged into each series.
func (r *Registry) RegisterCounterVec(name, help string, labels Labels, vec *CounterVec) {
	checkLabels(labels)
	for _, n := range vec.LabelNames() {
		if !validName(n) {
			panic(fmt.Sprintf("metrics: invalid label name %q", n))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindCounter)
	f.series = append(f.series, &series{labels: labels, vec: vec})
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// formatLabels renders {a="x",b="y"} with names sorted; extra wins over
// base on collision.
func formatLabels(base Labels, extraNames, extraValues []string) string {
	merged := make(map[string]string, len(base)+len(extraNames))
	for k, v := range base {
		merged[k] = v
	}
	for i, n := range extraNames {
		merged[n] = extraValues[i]
	}
	if len(merged) == 0 {
		return ""
	}
	names := make([]string, 0, len(merged))
	for k := range merged {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(merged[n]))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders every registered family in the Prometheus
// text exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	exemplars := r.exemplars
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s, exemplars); err != nil {
				return err
			}
		}
	}
	return nil
}

// exemplarSuffix renders the OpenMetrics exemplar annotation for bucket
// i of h, or "" when the bucket has none (or exemplars are off).
func exemplarSuffix(h *Histogram, i int, on bool) string {
	if !on {
		return ""
	}
	e, ok := h.Exemplar(i)
	if !ok {
		return ""
	}
	return fmt.Sprintf(` # {trace_id="%s"} %s`, escapeLabel(e.TraceID), formatFloat(e.Value))
}

func writeSeries(w io.Writer, f *family, s *series, exemplars bool) error {
	switch {
	case s.vec != nil:
		names := s.vec.LabelNames()
		for _, lv := range s.vec.Snapshot() {
			_, err := fmt.Fprintf(w, "%s%s %d\n",
				f.name, formatLabels(s.labels, names, lv.LabelValues), lv.Value)
			if err != nil {
				return err
			}
		}
	case s.hist != nil:
		var cum int64
		counts := s.hist.BucketCounts()
		for i, bound := range s.hist.Bounds() {
			cum += counts[i]
			_, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
				f.name, formatLabels(s.labels, []string{"le"}, []string{formatFloat(bound)}), cum,
				exemplarSuffix(s.hist, i, exemplars))
			if err != nil {
				return err
			}
		}
		cum += counts[len(counts)-1]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d%s\n",
			f.name, formatLabels(s.labels, []string{"le"}, []string{"+Inf"}), cum,
			exemplarSuffix(s.hist, len(counts)-1, exemplars)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, formatLabels(s.labels, nil, nil), formatFloat(s.hist.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, formatLabels(s.labels, nil, nil), cum); err != nil {
			return err
		}
		// Each emitted exemplar has been scraped; re-open the buckets so
		// the next interval captures one fresh sample per bucket.
		if exemplars {
			s.hist.RearmExemplars()
		}
	case s.intFn != nil:
		if _, err := fmt.Fprintf(w, "%s%s %d\n",
			f.name, formatLabels(s.labels, nil, nil), s.intFn()); err != nil {
			return err
		}
	case s.fltFn != nil:
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			f.name, formatLabels(s.labels, nil, nil), formatFloat(s.fltFn())); err != nil {
			return err
		}
	}
	return nil
}
