package metrics

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden locks the text exposition byte-for-byte: a
// scraper-visible format change must show up as a diff here.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()

	r.RegisterCounterFunc("app_requests_total", "Requests seen.", nil, func() int64 { return 42 })
	r.RegisterCounterFunc("app_events_total", "Events by kind.", Labels{"event": "forwarded"}, func() int64 { return 40 })
	r.RegisterCounterFunc("app_events_total", "Events by kind.", Labels{"event": "suppressed"}, func() int64 { return 2 })
	r.RegisterGaugeFunc("app_users", "Known users.", nil, func() float64 { return 7 })

	vec := NewCounterVec("outcome")
	vec.Add(3, "ok")
	vec.Add(1, `needs "escaping"
badly\`)
	r.RegisterCounterVec("app_outcomes_total", "Outcomes.", Labels{"shard": "0"}, vec)

	h := NewHistogram([]float64{0.25, 0.5, 1})
	for _, v := range []float64{0.1, 0.3, 0.3, 0.75, 2} {
		h.Observe(v)
	}
	r.RegisterHistogram("app_latency_seconds", "Latency.", Labels{"stage": "knn"}, h)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP app_requests_total Requests seen.
# TYPE app_requests_total counter
app_requests_total 42
# HELP app_events_total Events by kind.
# TYPE app_events_total counter
app_events_total{event="forwarded"} 40
app_events_total{event="suppressed"} 2
# HELP app_users Known users.
# TYPE app_users gauge
app_users 7
# HELP app_outcomes_total Outcomes.
# TYPE app_outcomes_total counter
app_outcomes_total{outcome="needs \"escaping\"\nbadly\\",shard="0"} 1
app_outcomes_total{outcome="ok",shard="0"} 3
# HELP app_latency_seconds Latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.25",stage="knn"} 1
app_latency_seconds_bucket{le="0.5",stage="knn"} 3
app_latency_seconds_bucket{le="1",stage="knn"} 4
app_latency_seconds_bucket{le="+Inf",stage="knn"} 5
app_latency_seconds_sum{stage="knn"} 3.45
app_latency_seconds_count{stage="knn"} 5
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestRegistryPanics(t *testing.T) {
	for name, reg := range map[string]func(*Registry){
		"invalid metric name": func(r *Registry) {
			r.RegisterCounterFunc("9bad", "", nil, func() int64 { return 0 })
		},
		"invalid label name": func(r *Registry) {
			r.RegisterGaugeFunc("ok_name", "", Labels{"bad-label": "x"}, func() float64 { return 0 })
		},
		"kind conflict": func(r *Registry) {
			r.RegisterCounterFunc("twice", "", nil, func() int64 { return 0 })
			r.RegisterGaugeFunc("twice", "", nil, func() float64 { return 0 })
		},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			reg(NewRegistry())
		})
	}
}
