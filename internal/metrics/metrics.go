// Package metrics provides the dependency-free statistics toolkit the
// experiment harness and the trusted server use to report
// quality-of-service and privacy numbers:
//
//   - Summary — streaming order statistics (mean, quantiles, extrema)
//     over an in-memory sample set, with an incrementally maintained
//     sorted view so interleaved Add/Quantile traffic stays cheap.
//   - Counters — named monotone counters ("requests", "unlinkings", …).
//   - CounterVec — labeled counter families in the Prometheus data
//     model (countervec.go).
//   - Histogram — fixed-bucket, wait-free histograms with merge and
//     quantile estimation, for latency and distribution metrics on the
//     request hot path (histogram.go).
//   - Registry / WritePrometheus — text exposition of all of the above
//     in the Prometheus 0.0.4 format, served by internal/httpapi at
//     GET /metrics (prometheus.go).
//
// Everything is safe for concurrent use. OBSERVABILITY.md at the
// repository root documents the concrete metric families the trusted
// server registers.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Summary accumulates float64 samples and answers order statistics.
// It is safe for concurrent use.
//
// Quantile queries are served from a cached sorted view that is
// invalidated by Add and rebuilt incrementally: only the samples added
// since the last query are sorted and merged into the cache, so an
// interleaved Add/Quantile workload costs O(new·log new + n) per query
// instead of re-sorting all n samples every time (see
// BenchmarkSummaryInterleaved).
type Summary struct {
	mu      sync.Mutex
	samples []float64 // in arrival order; samples[:ns] are merged into sorted
	sorted  []float64 // cached ascending view of samples[:ns]
	ns      int       // how many samples the cache covers
	sum     float64
}

// Add records one sample.
func (s *Summary) Add(v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, v)
	s.sum += v
}

// N returns the number of samples.
func (s *Summary) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Mean returns the sample mean, or NaN with no samples.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.samples))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank over the
// sorted samples, or NaN with no samples.
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.samples)
	if n == 0 {
		return math.NaN()
	}
	s.refreshSorted()
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return s.sorted[idx]
}

// refreshSorted folds samples added since the last query into the
// sorted cache: sort just the new tail, then merge the two runs.
// Callers hold s.mu.
func (s *Summary) refreshSorted() {
	if s.ns == len(s.samples) {
		return
	}
	tail := append([]float64(nil), s.samples[s.ns:]...)
	sort.Float64s(tail)
	if len(s.sorted) == 0 {
		s.sorted = tail
	} else {
		merged := make([]float64, 0, len(s.sorted)+len(tail))
		i, j := 0, 0
		for i < len(s.sorted) && j < len(tail) {
			if s.sorted[i] <= tail[j] {
				merged = append(merged, s.sorted[i])
				i++
			} else {
				merged = append(merged, tail[j])
				j++
			}
		}
		merged = append(merged, s.sorted[i:]...)
		merged = append(merged, tail[j:]...)
		s.sorted = merged
	}
	s.ns = len(s.samples)
}

// Min returns the smallest sample, or NaN with no samples.
func (s *Summary) Min() float64 { return s.Quantile(0) }

// Max returns the largest sample, or NaN with no samples.
func (s *Summary) Max() float64 { return s.Quantile(1) }

// String renders "n=… mean=… p50=… p95=…".
func (s *Summary) String() string {
	if s.N() == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N(), s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Max())
}

// Counters is a set of named monotone counters, safe for concurrent use.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Inc adds one to the named counter.
func (c *Counters) Inc(name string) { c.Addn(name, 1) }

// Addn adds n to the named counter.
func (c *Counters) Addn(name string, n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[name] += n
}

// Get returns the counter value (zero when never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Names returns all counter names in sorted order.
func (c *Counters) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m))
	for k := range c.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders "a=1 b=2 …" in name order.
func (c *Counters) String() string {
	var b strings.Builder
	for i, name := range c.Names() {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", name, c.Get(name))
	}
	return b.String()
}

// Ratio returns a/b as a float, or NaN when b is zero — handy for rates
// such as disruptions per request.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}
