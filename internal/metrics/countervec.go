// Labeled counters: a CounterVec is one logical metric family whose
// time series are distinguished by label values, mirroring the
// Prometheus data model ("requests_total{outcome=...}") without any
// external dependency.

package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CounterVec is a family of monotone counters keyed by a fixed set of
// label names. It is safe for concurrent use: the common case (the
// label combination already exists) takes only a read lock and an
// atomic add.
type CounterVec struct {
	labelNames []string
	mu         sync.RWMutex
	m          map[string]*atomic.Int64
}

// NewCounterVec returns a counter family with the given label names
// (order matters: Inc/Add/Get take values in the same order).
func NewCounterVec(labelNames ...string) *CounterVec {
	return &CounterVec{
		labelNames: append([]string(nil), labelNames...),
		m:          make(map[string]*atomic.Int64),
	}
}

// LabelNames returns the family's label names.
func (c *CounterVec) LabelNames() []string { return c.labelNames }

// key joins label values; \xff never appears in sane label values and
// keeps distinct tuples distinct.
func (c *CounterVec) key(labelValues []string) string {
	if len(labelValues) != len(c.labelNames) {
		panic(fmt.Sprintf("metrics: CounterVec got %d label values, want %d",
			len(labelValues), len(c.labelNames)))
	}
	return strings.Join(labelValues, "\xff")
}

func (c *CounterVec) cell(labelValues []string) *atomic.Int64 {
	k := c.key(labelValues)
	c.mu.RLock()
	cell := c.m[k]
	c.mu.RUnlock()
	if cell != nil {
		return cell
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if cell := c.m[k]; cell != nil {
		return cell
	}
	cell = new(atomic.Int64)
	c.m[k] = cell
	return cell
}

// Inc adds one to the series with the given label values.
func (c *CounterVec) Inc(labelValues ...string) { c.cell(labelValues).Add(1) }

// Add adds n to the series with the given label values.
func (c *CounterVec) Add(n int64, labelValues ...string) { c.cell(labelValues).Add(n) }

// Get returns the series value (zero when never incremented).
func (c *CounterVec) Get(labelValues ...string) int64 {
	k := c.key(labelValues)
	c.mu.RLock()
	defer c.mu.RUnlock()
	if cell := c.m[k]; cell != nil {
		return cell.Load()
	}
	return 0
}

// LabeledValue is one series of a CounterVec snapshot.
type LabeledValue struct {
	LabelValues []string
	Value       int64
}

// Snapshot returns every series, sorted by label values, for exposition.
func (c *CounterVec) Snapshot() []LabeledValue {
	c.mu.RLock()
	out := make([]LabeledValue, 0, len(c.m))
	for k, cell := range c.m {
		out = append(out, LabeledValue{
			LabelValues: strings.Split(k, "\xff"),
			Value:       cell.Load(),
		})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].LabelValues, out[j].LabelValues
		for x := range a {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return false
	})
	return out
}
