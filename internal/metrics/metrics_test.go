package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty summary must answer NaN")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Add(v)
	}
	if s.N() != 5 {
		t.Fatalf("N=%d", s.N())
	}
	if got := s.Mean(); got != 3 {
		t.Fatalf("Mean=%g", got)
	}
	if got := s.Min(); got != 1 {
		t.Fatalf("Min=%g", got)
	}
	if got := s.Max(); got != 5 {
		t.Fatalf("Max=%g", got)
	}
	if got := s.Quantile(0.5); got != 3 {
		t.Fatalf("median=%g", got)
	}
	// Adding after a quantile query keeps order statistics correct.
	s.Add(0)
	if got := s.Min(); got != 0 {
		t.Fatalf("Min after re-add=%g", got)
	}
}

func TestSummaryQuantileEdges(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Quantile(0.95); got != 95 {
		t.Fatalf("p95=%g", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("p0=%g", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("p100=%g", got)
	}
}

func TestSummaryConcurrent(t *testing.T) {
	var s Summary
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Add(float64(i))
				s.Quantile(0.5)
			}
		}()
	}
	wg.Wait()
	if s.N() != 8000 {
		t.Fatalf("N=%d", s.N())
	}
}

func TestSummaryString(t *testing.T) {
	var s Summary
	if got := s.String(); got != "n=0" {
		t.Fatalf("empty String=%q", got)
	}
	s.Add(2)
	if got := s.String(); !strings.Contains(got, "n=1") || !strings.Contains(got, "mean=2.00") {
		t.Fatalf("String=%q", got)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Inc("a")
	c.Addn("b", 5)
	if c.Get("a") != 2 || c.Get("b") != 5 || c.Get("zz") != 0 {
		t.Fatalf("counters wrong: %s", c)
	}
	if got := c.Names(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Names=%v", got)
	}
	if got := c.String(); got != "a=2 b=5" {
		t.Fatalf("String=%q", got)
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if c.Get("hits") != 8000 {
		t.Fatalf("hits=%d", c.Get("hits"))
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(1, 4); got != 0.25 {
		t.Fatalf("Ratio=%g", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("division by zero must be NaN")
	}
}
