package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	// An observation exactly on a bound belongs to that bucket (v ≤ bound).
	for _, v := range []float64{0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5) // ≤ 2
	h.Observe(2)   // ≤ 2
	h.Observe(5)   // ≤ 5
	h.Observe(5.1) // overflow
	got := h.BucketCounts()
	want := []int64{2, 2, 1, 1}
	if len(got) != len(want) {
		t.Fatalf("bucket count slice length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d, want 6", h.Count())
	}
	if sum := h.Sum(); sum != 0.5+1+1.5+2+5+5.1 {
		t.Fatalf("Sum = %g", sum)
	}
}

func TestHistogramNaNDropped(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(math.NaN())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("NaN observation must be dropped: count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestNewHistogramCleansBounds(t *testing.T) {
	h := NewHistogram([]float64{5, 1, 5, math.Inf(1), 2})
	got := h.Bounds()
	want := []float64{1, 2, 5}
	if len(got) != len(want) {
		t.Fatalf("Bounds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bounds = %v, want %v", got, want)
		}
	}
	for _, bad := range [][]float64{nil, {math.Inf(1)}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) must panic", bad)
				}
			}()
			NewHistogram(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("NaN bound must panic")
			}
		}()
		NewHistogram([]float64{math.NaN()})
	}()
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 1, 4)
	for i, want := range []float64{1, 2, 3, 4} {
		if lin[i] != want {
			t.Fatalf("LinearBuckets = %v", lin)
		}
	}
	exp := ExponentialBuckets(1, 10, 3)
	for i, want := range []float64{1, 10, 100} {
		if exp[i] != want {
			t.Fatalf("ExponentialBuckets = %v", exp)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ExponentialBuckets(0,…) must panic")
			}
		}()
		ExponentialBuckets(0, 2, 3)
	}()
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 2})
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(3)
	if err := a.Merge(b); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if a.Count() != 3 {
		t.Fatalf("merged Count = %d", a.Count())
	}
	if got := a.BucketCounts(); got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("merged buckets = %v", got)
	}
	if a.Sum() != 5 {
		t.Fatalf("merged Sum = %g", a.Sum())
	}
	// b is untouched.
	if b.Count() != 2 {
		t.Fatalf("source Count mutated: %d", b.Count())
	}

	if err := a.Merge(a); err == nil {
		t.Fatal("self-merge must error")
	}
	c := NewHistogram([]float64{1, 3})
	if err := a.Merge(c); err == nil {
		t.Fatal("bounds-mismatch merge must error")
	}
	d := NewHistogram([]float64{1})
	if err := a.Merge(d); err == nil {
		t.Fatal("bucket-count-mismatch merge must error")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%30) + 0.5) // uniform over (0, 30)
	}
	if got := h.Quantile(0.5); got < 10 || got > 20 {
		t.Fatalf("median = %g, want within (10, 20)", got)
	}
	h.Observe(1e9) // overflow resolves to the top finite bound
	if got := h.Quantile(1); got != 30 {
		t.Fatalf("p100 with overflow = %g, want 30", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(LinearBuckets(1, 1, 8))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Sum(); got != 28000 { // 1000 * (0+1+…+7)
		t.Fatalf("Sum = %g", got)
	}
}

func TestCounterVec(t *testing.T) {
	v := NewCounterVec("event", "shard")
	v.Inc("fwd", "0")
	v.Inc("fwd", "0")
	v.Add(5, "drop", "1")
	if got := v.Get("fwd", "0"); got != 2 {
		t.Fatalf("Get = %d", got)
	}
	if got := v.Get("nope", "9"); got != 0 {
		t.Fatalf("missing series = %d", got)
	}
	snap := v.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot = %v", snap)
	}
	// Sorted by label values: drop < fwd.
	if snap[0].LabelValues[0] != "drop" || snap[0].Value != 5 {
		t.Fatalf("Snapshot[0] = %v", snap[0])
	}
	if snap[1].LabelValues[0] != "fwd" || snap[1].Value != 2 {
		t.Fatalf("Snapshot[1] = %v", snap[1])
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wrong label arity must panic")
			}
		}()
		v.Inc("only-one")
	}()
}

// BenchmarkSummaryInterleaved guards the incremental sorted cache: an
// interleaved Add/Quantile workload must not re-sort all samples on
// every query.
func BenchmarkSummaryInterleaved(b *testing.B) {
	var s Summary
	for i := 0; i < 10000; i++ {
		s.Add(float64(i * 7 % 10000))
	}
	s.Quantile(0.5) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 1000))
		s.Quantile(0.99)
	}
}
