// Fixed-bucket histograms: the distribution-shaped complement to the
// Counters/Summary pair. A Histogram is lock-free on the Observe path
// (atomic adds only), mergeable across shards or replay runs, and
// renders natively into the Prometheus exposition format (see
// prometheus.go).

package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets. Bucket i holds the
// observations v with v ≤ bounds[i] (and > bounds[i−1]); one implicit
// overflow bucket (+Inf) catches everything above the last bound. The
// zero value is not usable — construct with NewHistogram.
//
// Observe is wait-free (a binary search plus two atomic adds), so a
// Histogram can sit on a request hot path shared by many goroutines.
type Histogram struct {
	bounds  []float64 // sorted, strictly increasing, finite
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum

	// exemplars holds the last trace-stamped observation per bucket
	// (including the overflow slot); nil entries mean none yet. armed
	// gates capture per bucket: an ObserveExemplar call stores only when
	// it wins the bucket's CAS, so between scrapes at most one
	// observation per bucket pays the Exemplar allocation — the rest pay
	// a single atomic load. RearmExemplars (called by the exposition
	// renderer) re-opens every bucket for a fresh sample.
	exemplars []atomic.Pointer[Exemplar]
	armed     []atomic.Bool
}

// Exemplar is one trace-stamped observation: the last sample recorded
// into a bucket via ObserveExemplar, kept so the exposition can point
// an operator from a latency bucket to the trace that landed there.
type Exemplar struct {
	// TraceID is the W3C trace id of the span that produced the sample.
	TraceID string
	// Value is the observed sample.
	Value float64
}

// NewHistogram returns a histogram over the given finite upper bounds.
// Bounds are sorted and deduplicated; +Inf entries are dropped (an
// overflow bucket always exists). It panics when no finite bound
// remains, or when any bound is NaN.
func NewHistogram(bounds []float64) *Histogram {
	cleaned := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if math.IsNaN(b) {
			panic("metrics: NaN histogram bound")
		}
		if !math.IsInf(b, 0) {
			cleaned = append(cleaned, b)
		}
	}
	sort.Float64s(cleaned)
	uniq := cleaned[:0]
	for i, b := range cleaned {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	if len(uniq) == 0 {
		panic("metrics: histogram needs at least one finite bound")
	}
	h := &Histogram{
		bounds:    uniq,
		counts:    make([]atomic.Int64, len(uniq)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(uniq)+1),
		armed:     make([]atomic.Bool, len(uniq)+1),
	}
	h.RearmExemplars()
	return h
}

// LinearBuckets returns n bounds start, start+width, … — the natural
// choice for small integer-valued distributions such as achieved k.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns n bounds start, start·factor, … — the
// natural choice for latencies and areas spanning orders of magnitude.
// It panics when start ≤ 0 or factor ≤ 1.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 {
		panic("metrics: ExponentialBuckets needs start > 0 and factor > 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Observe records one sample. NaN observations are dropped (they would
// poison the sum and fit no bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.observe(v)
}

// ObserveExemplar records one sample and, when the bucket is armed,
// stamps it with the producing trace id, so the exposition can emit an
// OpenMetrics exemplar pointing back to the trace. A bucket disarms
// after one capture and re-arms on the next exposition render
// (RearmExemplars), so between scrapes the common case is one atomic
// load and no allocation; the capture itself is a CAS won by exactly
// one observer, keeping the path wait-free.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if math.IsNaN(v) {
		return
	}
	i := h.observe(v)
	if traceID == "" || !h.armed[i].Load() {
		return
	}
	if h.armed[i].CompareAndSwap(true, false) {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// observe counts the sample and returns its bucket index.
func (h *Histogram) observe(v float64) int {
	// sort.SearchFloat64s finds the first bound ≥ v, i.e. the lowest
	// bucket whose upper bound admits v; misses land in the overflow slot.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return i
		}
	}
}

// RearmExemplars re-opens every bucket for one fresh exemplar capture.
// The exposition renderer calls it after emitting a histogram's bucket
// lines, so each scrape interval records at most one trace-stamped
// sample per bucket — recency without a per-observation allocation.
func (h *Histogram) RearmExemplars() {
	for i := range h.armed {
		h.armed[i].Store(true)
	}
}

// Exemplar returns the last trace-stamped observation of bucket i (the
// index space of BucketCounts: the final slot is the overflow bucket).
// ok is false when the bucket has no exemplar yet.
func (h *Histogram) Exemplar(i int) (e Exemplar, ok bool) {
	if i < 0 || i >= len(h.exemplars) {
		return Exemplar{}, false
	}
	p := h.exemplars[i].Load()
	if p == nil {
		return Exemplar{}, false
	}
	return *p, true
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the finite bucket upper bounds (not including +Inf).
// The returned slice is shared; callers must not modify it.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the overflow (+Inf) bucket. Under concurrent Observe calls
// the snapshot is per-slot atomic but not globally consistent.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Merge adds o's observations into h. The histograms must have
// identical bucket bounds; Merge returns an error otherwise. Merging a
// histogram into itself is a no-op error.
func (h *Histogram) Merge(o *Histogram) error {
	if h == o {
		return fmt.Errorf("metrics: cannot merge a histogram into itself")
	}
	if len(h.bounds) != len(o.bounds) {
		return fmt.Errorf("metrics: merge bounds mismatch: %d vs %d buckets", len(h.bounds), len(o.bounds))
	}
	for i := range h.bounds {
		if h.bounds[i] != o.bounds[i] {
			return fmt.Errorf("metrics: merge bounds mismatch at %d: %g vs %g", i, h.bounds[i], o.bounds[i])
		}
	}
	for i := range o.counts {
		h.counts[i].Add(o.counts[i].Load())
	}
	h.count.Add(o.count.Load())
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+o.Sum())) {
			return nil
		}
	}
}

// AddBucketCounts folds raw per-bucket counts into h — the merge path
// for aggregators (sliding windows, shard sums, audit replays) that
// accumulate bucket counts outside a Histogram and want quantile and
// exposition support over the sum. counts must have exactly one entry
// per bucket including the overflow slot (len(Bounds())+1), in the
// BucketCounts index space; sum is the corresponding observation sum
// (pass 0 when unknown — Quantile does not use it). Negative counts and
// length mismatches return an error without mutating h.
func (h *Histogram) AddBucketCounts(counts []int64, sum float64) error {
	if len(counts) != len(h.counts) {
		return fmt.Errorf("metrics: AddBucketCounts length mismatch: got %d, want %d", len(counts), len(h.counts))
	}
	var total int64
	for i, c := range counts {
		if c < 0 {
			return fmt.Errorf("metrics: AddBucketCounts negative count %d at bucket %d", c, i)
		}
		total += c
	}
	if math.IsNaN(sum) {
		return fmt.Errorf("metrics: AddBucketCounts NaN sum")
	}
	for i, c := range counts {
		if c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(total)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+sum)) {
			return nil
		}
	}
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts
// by linear interpolation inside the owning bucket. It returns NaN with
// no observations; observations in the overflow bucket resolve to the
// highest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		if cum+c >= rank {
			if i >= len(h.bounds) { // overflow bucket
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := float64(rank-cum) / float64(c)
			return lo + frac*(h.bounds[i]-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}
