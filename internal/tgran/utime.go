package tgran

import "fmt"

// UInterval is an unanchored time interval (paper Def. 1): a recurring
// daily window such as [7am, 9am]. It denotes the infinite set of
// anchored intervals obtained by instantiating the window in every
// granule of its period (a day by default).
//
// Start and End are offsets in seconds from the beginning of the period.
// A window may wrap around the period boundary (Start > End), e.g.
// [11pm, 1am].
type UInterval struct {
	Start, End int64 // offsets within the period, inclusive
	Period     int64 // period length; 0 means Day
}

// NewUInterval returns a daily unanchored interval with the given
// second-of-day offsets.
func NewUInterval(start, end int64) UInterval {
	return UInterval{Start: start, End: end, Period: Day}
}

func (u UInterval) period() int64 {
	if u.Period == 0 {
		return Day
	}
	return u.Period
}

// Validate reports offsets outside [0, period).
func (u UInterval) Validate() error {
	p := u.period()
	if p <= 0 {
		return fmt.Errorf("tgran: non-positive period %d", p)
	}
	if u.Start < 0 || u.Start >= p || u.End < 0 || u.End >= p {
		return fmt.Errorf("tgran: offsets [%d,%d] outside period %d", u.Start, u.End, p)
	}
	return nil
}

// Contains reports whether the instant t falls inside one of the
// anchored instantiations of the window.
func (u UInterval) Contains(t int64) bool {
	p := u.period()
	off := mod64(t, p)
	if u.Start <= u.End {
		return off >= u.Start && off <= u.End
	}
	// Wrapping window.
	return off >= u.Start || off <= u.End
}

// Anchor returns the anchored instance of the window that contains t.
// ok is false when t is outside every instance.
func (u UInterval) Anchor(t int64) (start, end int64, ok bool) {
	if !u.Contains(t) {
		return 0, 0, false
	}
	p := u.period()
	base := t - mod64(t, p)
	if u.Start <= u.End {
		return base + u.Start, base + u.End, true
	}
	// Wrapping: the instance containing t starts either this period or
	// the previous one.
	if mod64(t, p) >= u.Start {
		return base + u.Start, base + p + u.End, true
	}
	return base - p + u.Start, base + u.End, true
}

// Duration returns the window length in seconds.
func (u UInterval) Duration() int64 {
	if u.Start <= u.End {
		return u.End - u.Start
	}
	return u.period() - u.Start + u.End
}

// NextStart returns the start of the first instance beginning at or
// after t.
func (u UInterval) NextStart(t int64) int64 {
	p := u.period()
	base := t - mod64(t, p)
	s := base + u.Start
	if s < t {
		s += p
	}
	return s
}

func (u UInterval) String() string {
	return fmt.Sprintf("[%s,%s]", formatOffset(u.Start), formatOffset(u.End))
}

func formatOffset(s int64) string {
	h := s / Hour
	m := (s % Hour) / Minute
	sec := s % Minute
	if sec != 0 {
		return fmt.Sprintf("%02d:%02d:%02d", h, m, sec)
	}
	return fmt.Sprintf("%02d:%02d", h, m)
}
