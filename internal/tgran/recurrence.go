package tgran

import (
	"fmt"
	"sort"
	"strings"
)

// Term is one r.G factor of a recurrence formula.
type Term struct {
	R int64
	G Granularity
}

func (t Term) String() string { return fmt.Sprintf("%d.%s", t.R, t.G.Name()) }

// Recurrence is the temporal part of an LBQID (paper Def. 1):
//
//	r1.G1 * r2.G2 * ... * rn.Gn
//
// Semantics (paper §4): each complete observation of the LBQID element
// sequence must fall within a single granule of G1; there must be at
// least r1 distinct G1 granules so covered, all within one granule of
// G2; at least r2 such G2 granules, all within one granule of G3; and so
// on. A trailing 1.Gn is implicit, so the topmost level needs no
// enclosing granule. An empty recurrence is equivalent to "1." — the
// sequence may appear just once at any time.
type Recurrence struct {
	Terms []Term
}

// String renders the formula in the paper's syntax.
func (r Recurrence) String() string {
	if len(r.Terms) == 0 {
		return "1."
	}
	parts := make([]string, len(r.Terms))
	for i, t := range r.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " * ")
}

// Validate reports structural errors: non-positive repetition counts or
// nil granularities.
func (r Recurrence) Validate() error {
	for i, t := range r.Terms {
		if t.R <= 0 {
			return fmt.Errorf("tgran: term %d has non-positive count %d", i, t.R)
		}
		if t.G == nil {
			return fmt.Errorf("tgran: term %d has nil granularity", i)
		}
	}
	return nil
}

// Observation is the timestamps of one complete pass through an LBQID
// element sequence, in request order.
type Observation []int64

// Satisfied reports whether the set of observations satisfies the
// recurrence formula.
//
// An observation is valid when all its instants lie in a single granule
// of the first term's granularity (with an empty formula, any non-empty
// observation is valid and one suffices). Validity then cascades up the
// terms: level-i granules count when they contain at least r_{i-1}
// counted granules of level i-1.
func (r Recurrence) Satisfied(obs []Observation) bool {
	if len(r.Terms) == 0 {
		for _, o := range obs {
			if len(o) > 0 {
				return true
			}
		}
		return false
	}

	g1 := r.Terms[0].G
	// Collect the distinct G1 granules that fully contain an observation.
	level := map[int64]bool{}
	for _, o := range obs {
		if idx, ok := observationGranule(g1, o); ok {
			level[idx] = true
		}
	}

	for i := 0; i < len(r.Terms); i++ {
		need := r.Terms[i].R
		if int64(len(level)) < need {
			return false
		}
		if i == len(r.Terms)-1 {
			// Implicit trailing 1.Top: no enclosing granule required.
			return true
		}
		// Group the counted level-i granules by the enclosing granule of
		// the next term, keeping groups that reach the required count.
		lower := r.Terms[i].G
		upper := r.Terms[i+1].G
		counts := map[int64]int64{}
		for idx := range level {
			start, _, ok := lower.Granule(idx)
			if !ok {
				continue
			}
			up, ok := upper.GranuleOf(start)
			if !ok {
				continue
			}
			// The lower granule must lie entirely within the upper one for
			// the containment semantics to hold.
			_, lend, _ := lower.Granule(idx)
			ustart, uend, _ := upper.Granule(up)
			if start < ustart || lend > uend {
				continue
			}
			counts[up]++
		}
		next := map[int64]bool{}
		for up, c := range counts {
			if c >= need {
				next[up] = true
			}
		}
		level = next
	}
	return false
}

// Progress returns how far the observations have advanced through the
// formula: the number of leading terms whose requirement is already met
// (len(r.Terms) means fully satisfied). It lets callers report partial
// LBQID exposure.
func (r Recurrence) Progress(obs []Observation) int {
	if len(r.Terms) == 0 {
		if r.Satisfied(obs) {
			return 0
		}
		return 0
	}
	for i := len(r.Terms); i >= 1; i-- {
		if (Recurrence{Terms: r.Terms[:i]}).Satisfied(obs) {
			return i
		}
	}
	return 0
}

// observationGranule returns the index of the g granule containing every
// instant of o, or ok=false when o is empty, spans granules, or touches
// uncovered instants.
func observationGranule(g Granularity, o Observation) (int64, bool) {
	if len(o) == 0 {
		return 0, false
	}
	idx, ok := g.GranuleOf(o[0])
	if !ok {
		return 0, false
	}
	for _, t := range o[1:] {
		j, ok := g.GranuleOf(t)
		if !ok || j != idx {
			return 0, false
		}
	}
	return idx, true
}

// CompatibleWithSequence reports whether an in-progress observation with
// the given instants could still be completed: the instants must be
// non-decreasing and share a granule of the innermost granularity.
// With an empty formula only the ordering is required.
func (r Recurrence) CompatibleWithSequence(times []int64) bool {
	if !sort.SliceIsSorted(times, func(i, j int) bool { return times[i] < times[j] }) {
		return false
	}
	if len(r.Terms) == 0 || len(times) == 0 {
		return true
	}
	_, ok := observationGranule(r.Terms[0].G, times)
	return ok
}
