package tgran

import (
	"testing"
)

// at builds an engine instant from week, day-of-week (0=Mon) and hour.
func at(week, dow, hour int64) int64 { return week*Week + dow*Day + hour*Hour }

// obsAt builds a same-instant observation (single request).
func obsAt(t int64) Observation { return Observation{t} }

func mustRec(t *testing.T, s string) Recurrence {
	t.Helper()
	r, err := ParseRecurrence(s)
	if err != nil {
		t.Fatalf("ParseRecurrence(%q): %v", s, err)
	}
	return r
}

func TestEmptyRecurrence(t *testing.T) {
	r := Recurrence{}
	if r.Satisfied(nil) {
		t.Fatal("no observations must not satisfy")
	}
	if !r.Satisfied([]Observation{obsAt(42)}) {
		t.Fatal("a single observation satisfies the empty formula")
	}
	if r.Satisfied([]Observation{{}}) {
		t.Fatal("an empty observation must not satisfy")
	}
}

func TestPaperExample2(t *testing.T) {
	// "3.Weekdays * 2.Weeks": each observation within one weekday granule,
	// >=3 distinct weekdays in one week, for >=2 weeks.
	r := mustRec(t, "3.Weekdays * 2.Weeks")

	// A commute observation: morning + evening requests the same day.
	commute := func(week, dow int64) Observation {
		return Observation{at(week, dow, 7), at(week, dow, 8), at(week, dow, 16), at(week, dow, 18)}
	}

	var obs []Observation
	// Week 0: Mon, Tue, Wed. Week 1: Mon, Thu only (2 days).
	obs = append(obs, commute(0, 0), commute(0, 1), commute(0, 2))
	obs = append(obs, commute(1, 0), commute(1, 3))
	if r.Satisfied(obs) {
		t.Fatal("one full week + one 2-day week must not satisfy")
	}
	// Add Friday of week 1: now two complete weeks.
	obs = append(obs, commute(1, 4))
	if !r.Satisfied(obs) {
		t.Fatal("two weeks with 3 weekdays each must satisfy")
	}
}

func TestObservationSpanningDaysInvalid(t *testing.T) {
	r := mustRec(t, "1.Weekdays")
	// Observation straddling midnight: not within a single weekday granule.
	spanning := Observation{at(0, 0, 23), at(0, 1, 1)}
	if r.Satisfied([]Observation{spanning}) {
		t.Fatal("observation spanning two days must not count")
	}
	if !r.Satisfied([]Observation{obsAt(at(0, 0, 9))}) {
		t.Fatal("single-day observation must count")
	}
}

func TestWeekendObservationsUncovered(t *testing.T) {
	r := mustRec(t, "1.Weekdays")
	// Saturday request: Weekdays has no granule there.
	if r.Satisfied([]Observation{obsAt(at(0, 5, 10))}) {
		t.Fatal("weekend observation must not count for Weekdays")
	}
}

func TestSameDayObservationsCountOnce(t *testing.T) {
	// Distinct-granule semantics: two observations on the same day count
	// as one weekday.
	r := mustRec(t, "2.Weekdays")
	obs := []Observation{obsAt(at(0, 0, 9)), obsAt(at(0, 0, 17))}
	if r.Satisfied(obs) {
		t.Fatal("two same-day observations are one weekday granule")
	}
	obs = append(obs, obsAt(at(0, 1, 9)))
	if !r.Satisfied(obs) {
		t.Fatal("two distinct weekdays must satisfy")
	}
}

func TestThreeLevelFormula(t *testing.T) {
	r := mustRec(t, "2.Days * 2.Weeks * 2.Months")
	var obs []Observation
	// January 2006: weeks 0 and 1, two days each.
	for _, d := range []int64{0, 1, 7, 8} {
		obs = append(obs, obsAt(d*Day+10*Hour))
	}
	if r.Satisfied(obs) {
		t.Fatal("one qualifying month must not satisfy 2.Months")
	}
	// March 2006 (engine days 58..): add two more qualifying weeks.
	// 2006-03-06 is a Monday: engine day 63 (9 weeks after epoch).
	for _, d := range []int64{63, 64, 70, 71} {
		obs = append(obs, obsAt(d*Day+10*Hour))
	}
	if !r.Satisfied(obs) {
		t.Fatal("two qualifying months must satisfy")
	}
}

func TestWeekNotWithinMonthExcluded(t *testing.T) {
	// A week straddling a month boundary must not count toward x.Months
	// levels because the lower granule is not contained in the upper one.
	r := mustRec(t, "1.Weeks * 1.Months")
	// Engine week 4 starts Mon 2006-01-30 and ends in February.
	obs := []Observation{obsAt(at(4, 0, 10))}
	if r.Satisfied(obs) {
		t.Fatal("straddling week must not be contained in any month")
	}
	// Week 1 (Jan 9-15) lies fully in January.
	if !r.Satisfied([]Observation{obsAt(at(1, 0, 10))}) {
		t.Fatal("contained week must satisfy")
	}
}

func TestProgress(t *testing.T) {
	r := mustRec(t, "3.Weekdays * 2.Weeks")
	var obs []Observation
	if got := r.Progress(obs); got != 0 {
		t.Fatalf("empty progress = %d", got)
	}
	obs = append(obs, obsAt(at(0, 0, 9)), obsAt(at(0, 1, 9)), obsAt(at(0, 2, 9)))
	if got := r.Progress(obs); got != 1 {
		t.Fatalf("one full week: progress = %d want 1", got)
	}
	obs = append(obs, obsAt(at(1, 0, 9)), obsAt(at(1, 1, 9)), obsAt(at(1, 2, 9)))
	if got := r.Progress(obs); got != 2 {
		t.Fatalf("two full weeks: progress = %d want 2", got)
	}
	if !r.Satisfied(obs) {
		t.Fatal("progress==len(terms) must imply satisfied")
	}
}

func TestCompatibleWithSequence(t *testing.T) {
	r := mustRec(t, "3.Weekdays * 2.Weeks")
	if !r.CompatibleWithSequence([]int64{at(0, 0, 7), at(0, 0, 8)}) {
		t.Fatal("same-day increasing times must be compatible")
	}
	if r.CompatibleWithSequence([]int64{at(0, 0, 8), at(0, 0, 7)}) {
		t.Fatal("decreasing times must be incompatible")
	}
	if r.CompatibleWithSequence([]int64{at(0, 0, 7), at(0, 1, 8)}) {
		t.Fatal("cross-day partial observation must be incompatible")
	}
	if !(Recurrence{}).CompatibleWithSequence([]int64{1, 2, 3}) {
		t.Fatal("empty formula only requires ordering")
	}
}

func TestValidate(t *testing.T) {
	bad := Recurrence{Terms: []Term{{R: 0, G: Days}}}
	if bad.Validate() == nil {
		t.Fatal("zero count must fail validation")
	}
	bad = Recurrence{Terms: []Term{{R: 1, G: nil}}}
	if bad.Validate() == nil {
		t.Fatal("nil granularity must fail validation")
	}
	good := Recurrence{Terms: []Term{{R: 2, G: Days}, {R: 3, G: Weeks}}}
	if err := good.Validate(); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestRecurrenceString(t *testing.T) {
	r := mustRec(t, "3.Weekdays * 2.Weeks")
	if got := r.String(); got != "3.Weekdays * 2.Weeks" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Recurrence{}).String(); got != "1." {
		t.Fatalf("empty String() = %q", got)
	}
}

func TestParseRecurrenceErrors(t *testing.T) {
	for _, s := range []string{"Weekdays", "x.Weekdays", "0.Weekdays", "-2.Days", "3.Nope", "3.Weekdays * "} {
		if _, err := ParseRecurrence(s); err == nil {
			t.Errorf("ParseRecurrence(%q): expected error", s)
		}
	}
}

func TestParseRecurrenceRoundTrip(t *testing.T) {
	for _, s := range []string{"3.Weekdays * 2.Weeks", "1.Days", "2.Mondays * 3.Months"} {
		r := mustRec(t, s)
		r2 := mustRec(t, r.String())
		if r.String() != r2.String() {
			t.Errorf("round trip changed %q -> %q", s, r2.String())
		}
	}
}
