// Package tgran implements the time-granularity system the paper's
// recurrence formulas are built on (Bettini, Jajodia, Wang, "Time
// Granularities in Databases, Data Mining, and Temporal Reasoning",
// reference [3] of the paper).
//
// A granularity partitions (part of) the timeline into indexed granules.
// Granules are half-open intervals [start,end) of int64 seconds. A
// granularity need not cover the whole timeline: the "Mondays"
// granularity has one granule per Monday and no granule containing a
// Tuesday instant.
//
// The engine's epoch (t = 0) is Monday 2006-01-02 00:00:00 UTC, so day
// and week boundaries fall on multiples of Day and Week, and the civil
// calendar (months, years) stays available through the time package.
package tgran

import (
	"fmt"
	"time"
)

// Durations of the basic calendar units in seconds.
const (
	Second = int64(1)
	Minute = 60 * Second
	Hour   = 60 * Minute
	Day    = 24 * Hour
	Week   = 7 * Day
)

// Epoch is the civil instant of engine time 0: Monday 2006-01-02 00:00:00 UTC.
var Epoch = time.Date(2006, time.January, 2, 0, 0, 0, 0, time.UTC)

// ToCivil converts engine seconds to a civil UTC time. The supported
// domain is roughly ±292 years around the epoch (the range of
// time.Duration); instants outside it are meaningless for this engine.
func ToCivil(t int64) time.Time { return Epoch.Add(time.Duration(t) * time.Second) }

// FromCivil converts a civil time to engine seconds.
func FromCivil(t time.Time) int64 { return int64(t.Sub(Epoch) / time.Second) }

// Granularity is an indexed partition of (part of) the timeline.
//
// GranuleOf maps an instant to the index of the granule containing it;
// ok is false when no granule covers t. Granule returns the half-open
// bounds [start,end) of the granule with the given index; ok is false
// when the index denotes no granule.
type Granularity interface {
	Name() string
	GranuleOf(t int64) (index int64, ok bool)
	Granule(index int64) (start, end int64, ok bool)
}

// SameGranule reports whether a and b fall into the same granule of g.
// It is false when either instant is uncovered.
func SameGranule(g Granularity, a, b int64) bool {
	ia, oka := g.GranuleOf(a)
	ib, okb := g.GranuleOf(b)
	return oka && okb && ia == ib
}

// Uniform is a granularity whose granule i spans
// [Origin+i*Period, Origin+i*Period+Span). With Span == Period it tiles
// the timeline (seconds, minutes, hours, days, weeks); with Span < Period
// it leaves gaps (e.g. Mondays: Period=Week, Span=Day).
type Uniform struct {
	GName  string
	Origin int64
	Period int64
	Span   int64
}

// NewUniform returns a gapless uniform granularity with the given period.
func NewUniform(name string, origin, period int64) *Uniform {
	return &Uniform{GName: name, Origin: origin, Period: period, Span: period}
}

// Name implements Granularity.
func (u *Uniform) Name() string { return u.GName }

// GranuleOf implements Granularity.
func (u *Uniform) GranuleOf(t int64) (int64, bool) {
	i := floorDiv(t-u.Origin, u.Period)
	off := t - u.Origin - i*u.Period
	if off >= u.Span {
		return 0, false
	}
	return i, true
}

// Granule implements Granularity.
func (u *Uniform) Granule(i int64) (int64, int64, bool) {
	start := u.Origin + i*u.Period
	return start, start + u.Span, true
}

// Seconds, Minutes, Hours, Days and Weeks are the standard gapless
// granularities aligned to the engine epoch (weeks start on Monday).
var (
	Seconds = NewUniform("Seconds", 0, Second)
	Minutes = NewUniform("Minutes", 0, Minute)
	Hours   = NewUniform("Hours", 0, Hour)
	Days    = NewUniform("Days", 0, Day)
	Weeks   = NewUniform("Weeks", 0, Week)
)

// DayOfWeek returns the single-weekday granularity for d (one granule per
// calendar occurrence of that weekday). The engine epoch is a Monday.
func DayOfWeek(d time.Weekday) *Uniform {
	// time.Monday == 1; engine day 0 is a Monday.
	offset := (int64(d) - int64(time.Monday) + 7) % 7
	return &Uniform{GName: d.String() + "s", Origin: offset * Day, Period: Week, Span: Day}
}

// Weekdays is the granularity whose granules are the business days
// Monday..Friday, one granule per day, skipping weekends (five granules
// per week). Granule indexes advance by 5 per week.
type weekdays struct{}

// WeekdaysG is the shared Weekdays granularity instance.
var WeekdaysG Granularity = weekdays{}

func (weekdays) Name() string { return "Weekdays" }

func (weekdays) GranuleOf(t int64) (int64, bool) {
	day := floorDiv(t, Day)
	dow := mod64(day, 7) // 0 = Monday
	if dow >= 5 {
		return 0, false
	}
	week := floorDiv(day, 7)
	return week*5 + dow, true
}

func (weekdays) Granule(i int64) (int64, int64, bool) {
	week := floorDiv(i, 5)
	dow := mod64(i, 5)
	start := (week*7 + dow) * Day
	return start, start + Day, true
}

// Group returns a granularity whose granule i merges the k consecutive
// base granules [i*k, i*k+k). It supports patterns such as the paper's
// "at least two consecutive days" example, where a granule is composed
// of 2 contiguous days. The base granularity must be gapless for the
// merged granules to be contiguous, but Group does not require it.
func Group(name string, base Granularity, k int64) Granularity {
	if k <= 0 {
		panic("tgran: Group requires k >= 1")
	}
	return &group{name: name, base: base, k: k}
}

type group struct {
	name string
	base Granularity
	k    int64
}

func (g *group) Name() string { return g.name }

func (g *group) GranuleOf(t int64) (int64, bool) {
	i, ok := g.base.GranuleOf(t)
	if !ok {
		return 0, false
	}
	return floorDiv(i, g.k), true
}

func (g *group) Granule(i int64) (int64, int64, bool) {
	start, _, ok := g.base.Granule(i * g.k)
	if !ok {
		return 0, 0, false
	}
	_, end, ok := g.base.Granule(i*g.k + g.k - 1)
	if !ok {
		return 0, 0, false
	}
	return start, end, true
}

// Months is the civil-calendar month granularity (UTC). Granule 0 is
// January 2006; indexes count months since then.
type months struct{}

// MonthsG is the shared Months granularity instance.
var MonthsG Granularity = months{}

func (months) Name() string { return "Months" }

func (months) GranuleOf(t int64) (int64, bool) {
	c := ToCivil(t)
	return int64(c.Year()-2006)*12 + int64(c.Month()-time.January), true
}

func (months) Granule(i int64) (int64, int64, bool) {
	year := 2006 + int(floorDiv(i, 12))
	month := time.January + time.Month(mod64(i, 12))
	start := time.Date(year, month, 1, 0, 0, 0, 0, time.UTC)
	return FromCivil(start), FromCivil(start.AddDate(0, 1, 0)), true
}

// Years is the civil-calendar year granularity (UTC). Granule 0 is 2006.
type years struct{}

// YearsG is the shared Years granularity instance.
var YearsG Granularity = years{}

func (years) Name() string { return "Years" }

func (years) GranuleOf(t int64) (int64, bool) {
	return int64(ToCivil(t).Year() - 2006), true
}

func (years) Granule(i int64) (int64, int64, bool) {
	start := time.Date(2006+int(i), time.January, 1, 0, 0, 0, 0, time.UTC)
	return FromCivil(start), FromCivil(start.AddDate(1, 0, 0)), true
}

// Registry resolves granularity names for the recurrence and LBQID
// parsers. Lookup is case-insensitive on the first letter to accept both
// "weekdays" and "Weekdays".
var registry = map[string]Granularity{}

// Register adds g to the name registry, replacing any previous entry.
func Register(g Granularity) { registry[normName(g.Name())] = g }

// Lookup resolves a granularity by name.
func Lookup(name string) (Granularity, error) {
	if g, ok := registry[normName(name)]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("tgran: unknown granularity %q", name)
}

func normName(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

func init() {
	for _, g := range []Granularity{
		Seconds, Minutes, Hours, Days, Weeks, WeekdaysG, MonthsG, YearsG,
	} {
		Register(g)
	}
	for d := time.Sunday; d <= time.Saturday; d++ {
		Register(DayOfWeek(d))
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func mod64(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}
