package tgran

import (
	"testing"
	"testing/quick"
)

func TestUIntervalContains(t *testing.T) {
	u := NewUInterval(7*Hour, 9*Hour)
	cases := []struct {
		t    int64
		want bool
	}{
		{7 * Hour, true},
		{8 * Hour, true},
		{9 * Hour, true},
		{9*Hour + 1, false},
		{6*Hour + 3599, false},
		{Day + 8*Hour, true},     // next day, same window
		{-Day + 8*Hour, true},    // day before epoch
		{5*Day + 8*Hour, true},   // window recurs on weekends too
		{3*Day + 12*Hour, false}, // noon
	}
	for _, c := range cases {
		if got := u.Contains(c.t); got != c.want {
			t.Errorf("Contains(%d)=%v want %v", c.t, got, c.want)
		}
	}
}

func TestUIntervalWrap(t *testing.T) {
	u := NewUInterval(23*Hour, 1*Hour) // [11pm, 1am]
	if !u.Contains(23*Hour + 30*Minute) {
		t.Fatal("23:30 must be inside")
	}
	if !u.Contains(Day + 30*Minute) {
		t.Fatal("00:30 next day must be inside")
	}
	if u.Contains(12 * Hour) {
		t.Fatal("noon must be outside")
	}
	if got := u.Duration(); got != 2*Hour {
		t.Fatalf("Duration=%d want %d", got, 2*Hour)
	}
	// Anchor of an after-midnight instant points back to the previous day.
	s, e, ok := u.Anchor(Day + 30*Minute)
	if !ok || s != 23*Hour || e != Day+Hour {
		t.Fatalf("Anchor=[%d,%d] ok=%v", s, e, ok)
	}
}

func TestUIntervalAnchor(t *testing.T) {
	u := NewUInterval(7*Hour, 9*Hour)
	s, e, ok := u.Anchor(3*Day + 8*Hour)
	if !ok || s != 3*Day+7*Hour || e != 3*Day+9*Hour {
		t.Fatalf("Anchor=[%d,%d] ok=%v", s, e, ok)
	}
	if _, _, ok := u.Anchor(3 * Day); ok {
		t.Fatal("midnight is outside [7am,9am]")
	}
}

func TestUIntervalAnchorProperty(t *testing.T) {
	f := func(startH, endH uint8, raw int32) bool {
		u := NewUInterval(int64(startH%24)*Hour, int64(endH%24)*Hour)
		tm := int64(raw) * 131
		if !u.Contains(tm) {
			_, _, ok := u.Anchor(tm)
			return !ok
		}
		s, e, ok := u.Anchor(tm)
		return ok && s <= tm && tm <= e && e-s == u.Duration()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestUIntervalNextStart(t *testing.T) {
	u := NewUInterval(7*Hour, 9*Hour)
	if got := u.NextStart(0); got != 7*Hour {
		t.Fatalf("NextStart(0)=%d", got)
	}
	if got := u.NextStart(8 * Hour); got != Day+7*Hour {
		t.Fatalf("NextStart(8h)=%d", got)
	}
	if got := u.NextStart(7 * Hour); got != 7*Hour {
		t.Fatalf("NextStart at the boundary=%d", got)
	}
}

func TestUIntervalValidate(t *testing.T) {
	if err := NewUInterval(7*Hour, 9*Hour).Validate(); err != nil {
		t.Fatalf("valid interval rejected: %v", err)
	}
	if err := NewUInterval(-1, 9*Hour).Validate(); err == nil {
		t.Fatal("negative offset must fail")
	}
	if err := NewUInterval(0, Day).Validate(); err == nil {
		t.Fatal("offset == period must fail")
	}
	if err := (UInterval{Start: 0, End: 1, Period: -5}).Validate(); err == nil {
		t.Fatal("negative period must fail")
	}
}

func TestParseTimeOfDay(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"7am", 7 * Hour},
		{"12am", 0},
		{"12pm", 12 * Hour},
		{"7pm", 19 * Hour},
		{"7:30am", 7*Hour + 30*Minute},
		{"16:00", 16 * Hour},
		{"16:05:30", 16*Hour + 5*Minute + 30},
		{"0700", 7 * Hour},
		{" 9 PM ", 21 * Hour},
		{"23:59", 23*Hour + 59*Minute},
	}
	for _, c := range cases {
		got, err := ParseTimeOfDay(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseTimeOfDay(%q)=%d,%v want %d", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "25:00", "13pm", "0am", "7:60", "x", "7:1:2:3"} {
		if _, err := ParseTimeOfDay(bad); err == nil {
			t.Errorf("ParseTimeOfDay(%q): expected error", bad)
		}
	}
}

func TestParseUInterval(t *testing.T) {
	u, err := ParseUInterval("[7am,9am]")
	if err != nil || u.Start != 7*Hour || u.End != 9*Hour {
		t.Fatalf("ParseUInterval: %+v, %v", u, err)
	}
	u, err = ParseUInterval("16:00-18:30")
	if err != nil || u.Start != 16*Hour || u.End != 18*Hour+30*Minute {
		t.Fatalf("ParseUInterval dash form: %+v, %v", u, err)
	}
	if _, err := ParseUInterval("7am"); err == nil {
		t.Fatal("expected error for missing separator")
	}
	if _, err := ParseUInterval("[7am,junk]"); err == nil {
		t.Fatal("expected error for bad end time")
	}
}

func TestUIntervalString(t *testing.T) {
	if got := NewUInterval(7*Hour, 9*Hour+30*Minute).String(); got != "[07:00,09:30]" {
		t.Fatalf("String=%q", got)
	}
}
