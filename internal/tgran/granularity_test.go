package tgran

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEpochIsMonday(t *testing.T) {
	if Epoch.Weekday() != time.Monday {
		t.Fatalf("epoch weekday = %v, want Monday", Epoch.Weekday())
	}
	if got := FromCivil(Epoch); got != 0 {
		t.Fatalf("FromCivil(Epoch) = %d, want 0", got)
	}
	if got := ToCivil(0); !got.Equal(Epoch) {
		t.Fatalf("ToCivil(0) = %v, want %v", got, Epoch)
	}
}

func TestUniformGranuleRoundTrip(t *testing.T) {
	for _, g := range []*Uniform{Seconds, Minutes, Hours, Days, Weeks} {
		for _, tm := range []int64{0, 1, 59, 3600, 86399, 86400, 604800, -1, -86401, 1e9} {
			i, ok := g.GranuleOf(tm)
			if !ok {
				t.Fatalf("%s: gapless granularity returned no granule for %d", g.Name(), tm)
			}
			start, end, ok := g.Granule(i)
			if !ok {
				t.Fatalf("%s: granule %d missing", g.Name(), i)
			}
			if tm < start || tm >= end {
				t.Fatalf("%s: %d not in granule %d = [%d,%d)", g.Name(), tm, i, start, end)
			}
		}
	}
}

func TestUniformNegativeTime(t *testing.T) {
	// floor division: instant -1 belongs to day -1, not day 0.
	i, ok := Days.GranuleOf(-1)
	if !ok || i != -1 {
		t.Fatalf("GranuleOf(-1) = %d,%v want -1,true", i, ok)
	}
}

func TestDayOfWeek(t *testing.T) {
	mondays := DayOfWeek(time.Monday)
	if _, ok := mondays.GranuleOf(0); !ok {
		t.Fatal("engine instant 0 must be inside a Monday granule")
	}
	if _, ok := mondays.GranuleOf(Day); ok {
		t.Fatal("engine day 1 is a Tuesday; Mondays must not cover it")
	}
	tuesdays := DayOfWeek(time.Tuesday)
	if _, ok := tuesdays.GranuleOf(Day + Hour); !ok {
		t.Fatal("Tuesdays must cover day 1")
	}
	sundays := DayOfWeek(time.Sunday)
	if _, ok := sundays.GranuleOf(6*Day + Hour); !ok {
		t.Fatal("Sundays must cover day 6")
	}
	// Civil cross-check over three weeks.
	for d := int64(0); d < 21; d++ {
		civil := ToCivil(d * Day).Weekday()
		_, ok := DayOfWeek(civil).GranuleOf(d*Day + 12*Hour)
		if !ok {
			t.Fatalf("day %d (%v): DayOfWeek granularity missed its own day", d, civil)
		}
	}
}

func TestWeekdays(t *testing.T) {
	// Days 0..4 are Mon..Fri, 5..6 the weekend.
	for d := int64(0); d < 14; d++ {
		i, ok := WeekdaysG.GranuleOf(d*Day + Hour)
		isBusiness := d%7 < 5
		if ok != isBusiness {
			t.Fatalf("day %d: covered=%v want %v", d, ok, isBusiness)
		}
		if ok {
			start, end, ok2 := WeekdaysG.Granule(i)
			if !ok2 || start != d*Day || end != (d+1)*Day {
				t.Fatalf("day %d: granule %d = [%d,%d)", d, i, start, end)
			}
		}
	}
	// Indexes advance by 5 per week: Friday of week 0 is granule 4,
	// Monday of week 1 is granule 5.
	i1, _ := WeekdaysG.GranuleOf(4 * Day)
	i2, _ := WeekdaysG.GranuleOf(7 * Day)
	if i1 != 4 || i2 != 5 {
		t.Fatalf("weekday indexes: fri=%d mon=%d", i1, i2)
	}
}

func TestWeekdaysNegative(t *testing.T) {
	// Day -7 is the Monday before the epoch; day -1 is a Sunday.
	if _, ok := WeekdaysG.GranuleOf(-1 * Day); ok {
		t.Fatal("day -1 (Sunday) must be uncovered")
	}
	i, ok := WeekdaysG.GranuleOf(-7 * Day)
	if !ok || i != -5 {
		t.Fatalf("day -7: granule %d,%v want -5,true", i, ok)
	}
}

func TestGroup(t *testing.T) {
	twoDays := Group("TwoDays", Days, 2)
	i0, _ := twoDays.GranuleOf(0)
	i1, _ := twoDays.GranuleOf(Day + 5)
	i2, _ := twoDays.GranuleOf(2 * Day)
	if i0 != i1 || i1 == i2 {
		t.Fatalf("grouping wrong: %d %d %d", i0, i1, i2)
	}
	start, end, ok := twoDays.Granule(1)
	if !ok || start != 2*Day || end != 4*Day {
		t.Fatalf("granule 1 = [%d,%d)", start, end)
	}
}

func TestGroupPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	Group("bad", Days, 0)
}

func TestMonths(t *testing.T) {
	// Engine time 0 is 2006-01-02, inside month granule 0 (January 2006).
	i, ok := MonthsG.GranuleOf(0)
	if !ok || i != 0 {
		t.Fatalf("GranuleOf(0) = %d,%v", i, ok)
	}
	start, end, _ := MonthsG.Granule(0)
	if ToCivil(start).Month() != time.January || ToCivil(end).Month() != time.February {
		t.Fatalf("january bounds wrong: %v..%v", ToCivil(start), ToCivil(end))
	}
	// February 2008 (leap year) has 29 days.
	feb08 := int64((2008-2006)*12 + 1)
	s, e, _ := MonthsG.Granule(feb08)
	if (e-s)/Day != 29 {
		t.Fatalf("feb 2008 length = %d days", (e-s)/Day)
	}
}

func TestYears(t *testing.T) {
	i, ok := YearsG.GranuleOf(FromCivil(time.Date(2010, 6, 1, 0, 0, 0, 0, time.UTC)))
	if !ok || i != 4 {
		t.Fatalf("year granule = %d,%v want 4", i, ok)
	}
	s, e, _ := YearsG.Granule(2) // 2008, leap
	if (e-s)/Day != 366 {
		t.Fatalf("2008 length = %d days", (e-s)/Day)
	}
}

func TestSameGranule(t *testing.T) {
	if !SameGranule(Days, 10, Day-1) {
		t.Fatal("same day expected")
	}
	if SameGranule(Days, 10, Day) {
		t.Fatal("different days expected")
	}
	if SameGranule(WeekdaysG, 5*Day, 5*Day+1) {
		t.Fatal("weekend instants are uncovered; SameGranule must be false")
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"Weekdays", "weekdays", "Weeks", "Days", "Mondays", "Months"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("Fortnights"); err == nil {
		t.Error("expected error for unknown granularity")
	}
}

func TestRegisterCustom(t *testing.T) {
	Register(Group("TwoDays", Days, 2))
	g, err := Lookup("TwoDays")
	if err != nil || g.Name() != "TwoDays" {
		t.Fatalf("custom registration failed: %v", err)
	}
}

func TestGranuleRoundTripProperty(t *testing.T) {
	grans := []Granularity{Hours, Days, Weeks, WeekdaysG, MonthsG, YearsG,
		DayOfWeek(time.Wednesday), Group("G3D", Days, 3)}
	f := func(raw int32) bool {
		tm := int64(raw) // ±2^31 seconds: about 68 years either side
		for _, g := range grans {
			i, ok := g.GranuleOf(tm)
			if !ok {
				continue
			}
			start, end, ok := g.Granule(i)
			if !ok || tm < start || tm >= end {
				return false
			}
			// The instant just before start must map to a different granule.
			if j, ok := g.GranuleOf(start - 1); ok && j == i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupOverGappyBase(t *testing.T) {
	// Pairs of weekdays: granule 0 = Mon+Tue, granule 2 = Fri+next Mon.
	pairs := Group("WeekdayPairs", WeekdaysG, 2)
	i0, ok := pairs.GranuleOf(0)
	if !ok || i0 != 0 {
		t.Fatalf("monday: %d %v", i0, ok)
	}
	i1, _ := pairs.GranuleOf(Day)
	if i1 != 0 {
		t.Fatalf("tuesday must share monday's pair: %d", i1)
	}
	i2, _ := pairs.GranuleOf(2 * Day)
	if i2 != 1 {
		t.Fatalf("wednesday: %d", i2)
	}
	if _, ok := pairs.GranuleOf(5 * Day); ok {
		t.Fatal("saturday stays uncovered through Group")
	}
	start, end, ok := pairs.Granule(2) // Fri (granule 4) + Mon (granule 5)
	if !ok || start != 4*Day || end != 8*Day {
		t.Fatalf("granule 2 = [%d,%d) ok=%v", start, end, ok)
	}
}

func TestRecurrenceWithGroupedGranularity(t *testing.T) {
	Register(Group("TwoDayBlocks", Days, 2))
	r, err := ParseRecurrence("2.TwoDayBlocks")
	if err != nil {
		t.Fatal(err)
	}
	// Observations on day 0 and day 1 share a block: one granule only.
	obs := []Observation{{10 * Hour}, {Day + 10*Hour}}
	if r.Satisfied(obs) {
		t.Fatal("same block must count once")
	}
	obs = append(obs, Observation{2*Day + 10*Hour})
	if !r.Satisfied(obs) {
		t.Fatal("two distinct blocks must satisfy")
	}
}
