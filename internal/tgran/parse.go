package tgran

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseRecurrence parses the paper's recurrence syntax:
//
//	r1.G1 * r2.G2 * ... * rn.Gn
//
// e.g. "3.Weekdays * 2.Weeks". The empty string (or "1.") yields the
// empty recurrence, meaning the sequence may appear just once at any
// time. Granularity names are resolved through the package registry.
func ParseRecurrence(s string) (Recurrence, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "1." {
		return Recurrence{}, nil
	}
	var rec Recurrence
	for _, part := range strings.Split(s, "*") {
		part = strings.TrimSpace(part)
		dot := strings.Index(part, ".")
		if dot < 0 {
			return Recurrence{}, fmt.Errorf("tgran: term %q lacks the r.G form", part)
		}
		r, err := strconv.ParseInt(strings.TrimSpace(part[:dot]), 10, 64)
		if err != nil {
			return Recurrence{}, fmt.Errorf("tgran: bad repetition count in %q: %v", part, err)
		}
		if r <= 0 {
			return Recurrence{}, fmt.Errorf("tgran: non-positive repetition count in %q", part)
		}
		name := strings.TrimSpace(part[dot+1:])
		g, err := Lookup(name)
		if err != nil {
			return Recurrence{}, err
		}
		rec.Terms = append(rec.Terms, Term{R: r, G: g})
	}
	return rec, nil
}

// ParseTimeOfDay parses a time-of-day string into a second-of-day
// offset. Accepted forms: "7am", "12pm", "7:30am", "16:00", "16:00:30",
// "0700". Midnight is "12am" or "0:00"; noon is "12pm" or "12:00".
func ParseTimeOfDay(s string) (int64, error) {
	orig := s
	s = strings.ToLower(strings.TrimSpace(s))
	var meridiem int64 = -1 // -1: 24h clock, 0: am, 12: pm
	if strings.HasSuffix(s, "am") {
		meridiem = 0
		s = strings.TrimSpace(strings.TrimSuffix(s, "am"))
	} else if strings.HasSuffix(s, "pm") {
		meridiem = 12
		s = strings.TrimSpace(strings.TrimSuffix(s, "pm"))
	}
	if s == "" {
		return 0, fmt.Errorf("tgran: empty time of day %q", orig)
	}

	var h, m, sec int64
	var err error
	switch parts := strings.Split(s, ":"); len(parts) {
	case 1:
		if meridiem == -1 && len(parts[0]) == 4 { // military "0700"
			h, err = strconv.ParseInt(parts[0][:2], 10, 64)
			if err == nil {
				m, err = strconv.ParseInt(parts[0][2:], 10, 64)
			}
		} else {
			h, err = strconv.ParseInt(parts[0], 10, 64)
		}
	case 2:
		h, err = strconv.ParseInt(parts[0], 10, 64)
		if err == nil {
			m, err = strconv.ParseInt(parts[1], 10, 64)
		}
	case 3:
		h, err = strconv.ParseInt(parts[0], 10, 64)
		if err == nil {
			m, err = strconv.ParseInt(parts[1], 10, 64)
		}
		if err == nil {
			sec, err = strconv.ParseInt(parts[2], 10, 64)
		}
	default:
		return 0, fmt.Errorf("tgran: malformed time of day %q", orig)
	}
	if err != nil {
		return 0, fmt.Errorf("tgran: malformed time of day %q: %v", orig, err)
	}

	if meridiem >= 0 {
		if h < 1 || h > 12 {
			return 0, fmt.Errorf("tgran: 12-hour clock hour out of range in %q", orig)
		}
		h %= 12 // 12am -> 0, 12pm -> 0 (+12 below)
		h += meridiem
	}
	if h < 0 || h > 23 || m < 0 || m > 59 || sec < 0 || sec > 59 {
		return 0, fmt.Errorf("tgran: time of day out of range in %q", orig)
	}
	return h*Hour + m*Minute + sec, nil
}

// ParseUInterval parses "[7am,9am]" or "7am-9am" style daily windows.
func ParseUInterval(s string) (UInterval, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	var a, b string
	if i := strings.Index(s, ","); i >= 0 {
		a, b = s[:i], s[i+1:]
	} else if i := strings.Index(s, "-"); i >= 0 {
		a, b = s[:i], s[i+1:]
	} else {
		return UInterval{}, fmt.Errorf("tgran: malformed unanchored interval %q", s)
	}
	start, err := ParseTimeOfDay(a)
	if err != nil {
		return UInterval{}, err
	}
	end, err := ParseTimeOfDay(b)
	if err != nil {
		return UInterval{}, err
	}
	return NewUInterval(start, end), nil
}
