package tgran

import (
	"sort"
	"testing"
	"time"
)

// fuzzGranularity maps a selector byte to a granularity. The palette
// deliberately includes degenerate members: a zero-span Uniform (granule
// [start,start) contains no instant at all), a one-second period, and
// gappy granularities (single weekdays, business days).
func fuzzGranularity(sel, param byte) Granularity {
	switch sel % 8 {
	case 0:
		return Hours
	case 1:
		return Days
	case 2:
		return Weeks
	case 3:
		return WeekdaysG
	case 4:
		return DayOfWeek(time.Weekday(int(param) % 7))
	case 5:
		return Group("group", Days, 1+int64(param%4))
	case 6:
		// Zero-length granules: GranuleOf never succeeds.
		return &Uniform{GName: "empty", Origin: int64(param) * Hour, Period: Day, Span: 0}
	default:
		// Gappy: covers only the first param+1 hours of each day.
		return &Uniform{GName: "gappy", Origin: 0, Period: Day, Span: (1 + int64(param%23)) * Hour}
	}
}

// fuzzRecurrence builds a structurally valid recurrence from spec bytes,
// three bytes per term (count, granularity selector, parameter). Counts
// include r=1 terms, the ISSUE's degenerate case.
func fuzzRecurrence(spec []byte) Recurrence {
	var terms []Term
	for i := 0; i+2 < len(spec) && len(terms) < 4; i += 3 {
		terms = append(terms, Term{
			R: 1 + int64(spec[i]%4),
			G: fuzzGranularity(spec[i+1], spec[i+2]),
		})
	}
	return Recurrence{Terms: terms}
}

// fuzzObservations decodes timestamps from bytes (two bytes per instant,
// scaled so the stream spans about a year) and chunks them into
// observations of one to three instants.
func fuzzObservations(times []byte) []Observation {
	var instants []int64
	for i := 0; i+1 < len(times) && len(instants) < 64; i += 2 {
		instants = append(instants, (int64(times[i])<<8|int64(times[i+1]))*450)
	}
	var obs []Observation
	for i := 0; i < len(instants); {
		n := 1 + i%3
		if i+n > len(instants) {
			n = len(instants) - i
		}
		obs = append(obs, Observation(instants[i:i+n]))
		i += n
	}
	return obs
}

// FuzzRecurrenceSatisfied exercises Satisfied/Progress over arbitrary
// formulas and observation sets and asserts the semantic laws that hold
// for every input: validity of constructed formulas, Progress bounds and
// its agreement with Satisfied, monotonicity under added observations,
// idempotence under duplication, and CompatibleWithSequence accepting
// every single-granule sorted observation.
func FuzzRecurrenceSatisfied(f *testing.F) {
	f.Add([]byte{0, 1, 0}, []byte{0, 0, 0, 1, 0, 2})                  // 1.Days, instants near epoch
	f.Add([]byte{1, 2, 0, 0, 2, 0}, []byte{1, 0, 2, 0, 40, 0, 80, 0}) // 2.Weeks * 1.Weeks
	f.Add([]byte{0, 6, 5}, []byte{9, 9})                              // r=1 over zero-span granules
	f.Add([]byte{3, 3, 0, 1, 5, 1}, []byte{})                         // weekday formula, no observations
	f.Fuzz(func(t *testing.T, spec, times []byte) {
		r := fuzzRecurrence(spec)
		if err := r.Validate(); err != nil {
			t.Fatalf("constructed recurrence %v invalid: %v", r, err)
		}
		obs := fuzzObservations(times)

		sat := r.Satisfied(obs)
		prog := r.Progress(obs)
		if prog < 0 || prog > len(r.Terms) {
			t.Fatalf("%v: Progress=%d outside [0,%d]", r, prog, len(r.Terms))
		}
		if len(r.Terms) > 0 && sat != (prog == len(r.Terms)) {
			t.Fatalf("%v: Satisfied=%v but Progress=%d of %d", r, sat, prog, len(r.Terms))
		}

		// Monotone: a satisfied prefix of the observations stays satisfied
		// with the rest appended, and Progress never decreases.
		half := obs[:len(obs)/2]
		if r.Satisfied(half) && !sat {
			t.Fatalf("%v: adding observations unsatisfied the formula", r)
		}
		if hp := r.Progress(half); hp > prog {
			t.Fatalf("%v: Progress dropped from %d to %d as observations grew", r, hp, prog)
		}

		// Idempotent: duplicating every observation changes nothing.
		if r.Satisfied(append(append([]Observation{}, obs...), obs...)) != sat {
			t.Fatalf("%v: duplication changed Satisfied", r)
		}

		// Any sorted observation lying in one granule of the innermost
		// granularity is a compatible in-progress sequence.
		if len(r.Terms) > 0 {
			for _, o := range obs {
				if _, ok := observationGranule(r.Terms[0].G, o); !ok {
					continue
				}
				s := append([]int64{}, o...)
				sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
				if !r.CompatibleWithSequence(s) {
					t.Fatalf("%v: single-granule observation %v reported incompatible", r, s)
				}
			}
		}
	})
}
