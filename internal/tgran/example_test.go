package tgran_test

import (
	"fmt"

	"histanon/internal/tgran"
)

// Recurrence formulas follow the paper's r1.G1 * r2.G2 syntax: this one
// requires observations on three distinct weekdays within a week, for
// at least two weeks.
func ExampleParseRecurrence() {
	r, err := tgran.ParseRecurrence("3.Weekdays * 2.Weeks")
	if err != nil {
		panic(err)
	}
	day := func(week, dow int64) tgran.Observation {
		return tgran.Observation{week*tgran.Week + dow*tgran.Day + 9*tgran.Hour}
	}
	oneWeek := []tgran.Observation{day(0, 0), day(0, 1), day(0, 2)}
	fmt.Println("one full week:", r.Satisfied(oneWeek))
	twoWeeks := append(oneWeek, day(1, 0), day(1, 2), day(1, 4))
	fmt.Println("two full weeks:", r.Satisfied(twoWeeks))
	// Output:
	// one full week: false
	// two full weeks: true
}

// Unanchored intervals denote a daily window; [11pm,1am] wraps around
// midnight.
func ExampleUInterval() {
	u, _ := tgran.ParseUInterval("[23:00,01:00]")
	fmt.Println(u.Contains(23*tgran.Hour + 1800)) // 23:30
	fmt.Println(u.Contains(tgran.Day + 1800))     // 00:30 the next day
	fmt.Println(u.Contains(12 * tgran.Hour))      // noon
	// Output:
	// true
	// true
	// false
}

// Granularities partition the timeline; Weekdays leaves weekend gaps.
func ExampleGranularity() {
	if _, ok := tgran.WeekdaysG.GranuleOf(0); ok {
		fmt.Println("engine instant 0 (a Monday) is a weekday")
	}
	if _, ok := tgran.WeekdaysG.GranuleOf(5 * tgran.Day); !ok {
		fmt.Println("day 5 (a Saturday) is not")
	}
	// Output:
	// engine instant 0 (a Monday) is a weekday
	// day 5 (a Saturday) is not
}
