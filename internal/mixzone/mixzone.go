// Package mixzone implements the unlinking machinery of the paper's
// §6.3. A mix zone (Beresford–Stajano, paper refs. [1,2]) is a spatial
// area such that an individual crossing it cannot have their positions
// after the crossing linked to positions before it; the trusted server
// changes the user's pseudonym inside the zone.
//
// The paper extends the idea with *on-demand* mix zones: "temporarily
// disabling the use of the service for a number of users in the same
// area for the time sufficient to confuse the SP", formalized as
// "finding, given a specific point in space, k diverging trajectories
// (each one for a different user) that are sufficiently close to the
// point". This package provides both the static-zone registry and the
// diverging-trajectory search.
package mixzone

import (
	"math"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// Zone is a static mix zone: inside it no service is delivered and
// pseudonyms may be rotated safely.
type Zone struct {
	// Name labels the zone.
	Name string
	// Area is the zone's spatial extent.
	Area geo.Rect
	// MinDwell is the minimum time (seconds) a user must spend inside the
	// zone for the crossing to count as a mixing opportunity.
	MinDwell int64
}

// Registry holds the static mix zones of a deployment area.
type Registry struct {
	zones []Zone
}

// NewRegistry returns a registry over the given zones.
func NewRegistry(zones ...Zone) *Registry {
	return &Registry{zones: append([]Zone(nil), zones...)}
}

// Add registers another zone.
func (r *Registry) Add(z Zone) { r.zones = append(r.zones, z) }

// Zones returns the registered zones.
func (r *Registry) Zones() []Zone { return r.zones }

// ZoneAt returns the first zone containing p, if any.
func (r *Registry) ZoneAt(p geo.Point) (Zone, bool) {
	for _, z := range r.zones {
		if z.Area.Contains(p) {
			return z, true
		}
	}
	return Zone{}, false
}

// CrossedZone reports whether the trajectory segment of a user's recent
// history shows a qualifying crossing of some zone ending at or before
// now: the user entered a zone and dwelt at least MinDwell.
func (r *Registry) CrossedZone(h *phl.History, since, now int64) (Zone, bool) {
	if h == nil {
		return Zone{}, false
	}
	pts := h.In(geo.STBox{
		Area: geo.Rect{MinX: math.Inf(-1), MinY: math.Inf(-1), MaxX: math.Inf(1), MaxY: math.Inf(1)},
		Time: geo.Interval{Start: since, End: now},
	})
	for _, z := range r.zones {
		var first, last int64 = -1, -1
		for _, p := range pts {
			if z.Area.Contains(p.P) {
				if first < 0 {
					first = p.T
				}
				last = p.T
			}
		}
		if first >= 0 && last-first >= z.MinDwell {
			return z, true
		}
	}
	return Zone{}, false
}

// Divergence measures how differently a set of users move away from a
// point: the minimum pairwise angular separation (radians) of their
// forward headings over the horizon following t.
type Divergence struct {
	// Horizon is how far ahead (seconds) headings are estimated.
	// Zero means DefaultHorizon.
	Horizon int64
	// MinAngle is the pairwise angular separation (radians) required for
	// two trajectories to count as diverging. Zero means DefaultMinAngle.
	MinAngle float64
}

// Defaults for the divergence test: ten-minute horizon and 45° pairwise
// separation.
const (
	DefaultHorizon  = int64(600)
	DefaultMinAngle = math.Pi / 4
)

func (d Divergence) horizon() int64 {
	if d.Horizon == 0 {
		return DefaultHorizon
	}
	return d.Horizon
}

func (d Divergence) minAngle() float64 {
	if d.MinAngle == 0 {
		return DefaultMinAngle
	}
	return d.MinAngle
}

// heading estimates the user's direction of travel right after t: the
// vector from their position at (or just before) t to their position one
// horizon later. ok is false when the history has no samples on both
// sides or the user does not move.
func (d Divergence) heading(h *phl.History, t int64, m geo.STMetric) (float64, bool) {
	if h == nil || h.Len() == 0 {
		return 0, false
	}
	from, _, ok := h.Closest(geo.STPoint{T: t}, onlyTimeMetric())
	if !ok {
		return 0, false
	}
	to, _, ok := h.Closest(geo.STPoint{T: t + d.horizon()}, onlyTimeMetric())
	if !ok || to.T <= from.T {
		return 0, false
	}
	v := to.P.Sub(from.P)
	if v.Norm() < 1e-9 {
		return 0, false
	}
	return v.Heading(), true
}

// onlyTimeMetric makes History.Closest a pure nearest-in-time lookup.
func onlyTimeMetric() geo.STMetric { return geo.STMetric{TimeScale: 1e12} }

// FindDiverging searches for k users, other than the issuer, whose
// trajectories pass close to the point p around time t and then head in
// pairwise-diverging directions — the candidates for an on-demand mix
// zone. Users are considered in order of trajectory distance from
// ⟨p,t⟩; a greedy pass keeps those whose heading differs from every kept
// heading by at least MinAngle. ok is false when fewer than k diverging
// users are found among the nearest candidates.
func FindDiverging(idx stindex.Index, store phl.Storer, issuer phl.UserID,
	p geo.Point, t int64, k int, d Divergence, m geo.STMetric) ([]phl.UserID, bool) {
	if k <= 0 {
		return nil, true
	}
	// Over-fetch: divergence rejects some near users.
	fetch := 4*k + 8
	cands := idx.KNearestUsers(geo.STPoint{P: p, T: t}, fetch, m, map[phl.UserID]bool{issuer: true})
	var kept []phl.UserID
	var headings []float64
	for _, c := range cands {
		hd, ok := d.heading(store.History(c.User), t, m)
		if !ok {
			continue
		}
		diverges := true
		for _, other := range headings {
			if angleDiff(hd, other) < d.minAngle() {
				diverges = false
				break
			}
		}
		if diverges {
			kept = append(kept, c.User)
			headings = append(headings, hd)
			if len(kept) == k {
				return kept, true
			}
		}
	}
	return kept, false
}

// angleDiff returns the absolute angular separation in [0, pi].
func angleDiff(a, b float64) float64 {
	d := math.Mod(math.Abs(a-b), 2*math.Pi)
	if d > math.Pi {
		d = 2*math.Pi - d
	}
	return d
}

// OnDemand plans an on-demand mix zone around a point: the area covering
// the diverging users' positions, expanded by Margin, and the service
// suppression window [t, t+Quiet].
type OnDemand struct {
	// Quiet is how long (seconds) service is suppressed inside the zone.
	Quiet int64
	// Margin expands the zone area beyond the participants' positions.
	Margin float64
	// Divergence configures the trajectory test.
	Divergence Divergence
	// FallbackRadius, when positive, enables temporal-only mixing when
	// too few diverging users are found: the zone becomes a square of
	// this half-width around the issuer, suppressed for Quiet seconds —
	// "temporarily disabling the use of the service ... for the time
	// sufficient to confuse the SP" (§6.3) even without ideal
	// trajectory divergence. The quiet gap alone decays tracking
	// confidence; the radius bounds where the user may re-emerge.
	FallbackRadius float64
}

// Plan is a scheduled on-demand mix zone.
type Plan struct {
	// Area is the zone's extent.
	Area geo.Rect
	// Window is the suppression interval.
	Window geo.Interval
	// Participants are the users mixed inside the zone (the issuer is
	// added by the caller).
	Participants []phl.UserID
	// Fallback marks a temporal-only plan formed via FallbackRadius
	// because too few diverging users were available. Fallback zones
	// give weaker mixing guarantees, so the audit log distinguishes
	// them from trajectory-diverging zones.
	Fallback bool
}

// MixSet returns the size of the mixing set the plan provides: the
// participants plus the issuer.
func (pl Plan) MixSet() int { return len(pl.Participants) + 1 }

// Plan computes an on-demand mix zone for the issuer at ⟨p,t⟩ with k
// fellow participants. ok is false when not enough diverging users are
// available; the zone cannot be formed and the caller should fall back
// to notifying the user (paper §6.1 step 2).
func (o OnDemand) Plan(idx stindex.Index, store phl.Storer, issuer phl.UserID,
	p geo.Point, t int64, k int, m geo.STMetric) (Plan, bool) {
	users, ok := FindDiverging(idx, store, issuer, p, t, k, o.Divergence, m)
	quiet := o.Quiet
	if quiet == 0 {
		quiet = DefaultHorizon
	}
	if !ok {
		if o.FallbackRadius <= 0 {
			return Plan{}, false
		}
		return Plan{
			Area:         geo.RectAround(p).Expand(o.FallbackRadius),
			Window:       geo.Interval{Start: t, End: t + quiet},
			Participants: users,
			Fallback:     true,
		}, true
	}
	area := geo.RectAround(p)
	for _, u := range users {
		h := store.History(u)
		if h == nil {
			continue
		}
		if pt, _, found := h.Closest(geo.STPoint{P: p, T: t}, m); found {
			area = area.Extend(pt.P)
		}
	}
	return Plan{
		Area:         area.Expand(o.Margin),
		Window:       geo.Interval{Start: t, End: t + quiet},
		Participants: users,
	}, true
}

// Suppresses reports whether the plan suppresses service for a request
// at ⟨p,t⟩.
func (pl Plan) Suppresses(p geo.Point, t int64) bool {
	return pl.Window.Contains(t) && pl.Area.Contains(p)
}
