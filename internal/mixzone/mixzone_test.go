package mixzone

import (
	"math"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

func pt(x, y float64, t int64) geo.STPoint {
	return geo.STPoint{P: geo.Point{X: x, Y: y}, T: t}
}

func rect(a, b, c, d float64) geo.Rect {
	return geo.Rect{MinX: a, MinY: b, MaxX: c, MaxY: d}
}

func TestRegistryZoneAt(t *testing.T) {
	r := NewRegistry(
		Zone{Name: "plaza", Area: rect(0, 0, 100, 100)},
		Zone{Name: "station", Area: rect(200, 200, 300, 300)},
	)
	if z, ok := r.ZoneAt(geo.Point{X: 50, Y: 50}); !ok || z.Name != "plaza" {
		t.Fatalf("ZoneAt plaza: %v %v", z, ok)
	}
	if _, ok := r.ZoneAt(geo.Point{X: 150, Y: 150}); ok {
		t.Fatal("no zone at 150,150")
	}
	r.Add(Zone{Name: "mall", Area: rect(140, 140, 160, 160)})
	if z, ok := r.ZoneAt(geo.Point{X: 150, Y: 150}); !ok || z.Name != "mall" {
		t.Fatalf("ZoneAt mall after Add: %v %v", z, ok)
	}
	if len(r.Zones()) != 3 {
		t.Fatalf("Zones=%d", len(r.Zones()))
	}
}

func TestCrossedZone(t *testing.T) {
	r := NewRegistry(Zone{Name: "plaza", Area: rect(0, 0, 100, 100), MinDwell: 60})
	var h phl.History
	h.Append(pt(-50, 0, 0))    // outside
	h.Append(pt(50, 50, 100))  // inside
	h.Append(pt(60, 50, 180))  // inside, 80s dwell
	h.Append(pt(200, 50, 240)) // outside
	if z, ok := r.CrossedZone(&h, 0, 300); !ok || z.Name != "plaza" {
		t.Fatalf("CrossedZone: %v %v", z, ok)
	}
	// Too brief a dwell.
	var brief phl.History
	brief.Append(pt(50, 50, 100))
	brief.Append(pt(60, 50, 120)) // 20s < 60s
	if _, ok := r.CrossedZone(&brief, 0, 300); ok {
		t.Fatal("20s dwell must not qualify")
	}
	if _, ok := r.CrossedZone(nil, 0, 300); ok {
		t.Fatal("nil history never crosses")
	}
	// Crossing outside the considered window.
	if _, ok := r.CrossedZone(&h, 250, 300); ok {
		t.Fatal("crossing happened before the window")
	}
}

func TestAngleDiff(t *testing.T) {
	cases := []struct{ a, b, want float64 }{
		{0, 0, 0},
		{0, math.Pi / 2, math.Pi / 2},
		{-math.Pi + 0.1, math.Pi - 0.1, 0.2},
		{0, math.Pi, math.Pi},
	}
	for _, c := range cases {
		if got := angleDiff(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("angleDiff(%g,%g)=%g want %g", c.a, c.b, got, c.want)
		}
	}
}

// starDB builds users radiating from the origin in distinct directions:
// user i sits near the origin at t=0 and moves outward along angle
// 2*pi*i/n.
func starDB(n int) (*phl.Store, stindex.Index) {
	store := phl.NewStore()
	idx := stindex.NewGrid(200, 600)
	for i := 0; i < n; i++ {
		u := phl.UserID(i)
		angle := 2 * math.Pi * float64(i) / float64(n)
		for step := int64(0); step <= 6; step++ {
			d := float64(step) * 100
			p := pt(d*math.Cos(angle), d*math.Sin(angle), step*100)
			store.Record(u, p)
			idx.Insert(u, p)
		}
	}
	return store, idx
}

func TestFindDiverging(t *testing.T) {
	store, idx := starDB(8)
	m := geo.STMetric{TimeScale: 1}
	users, ok := FindDiverging(idx, store, 0, geo.Point{}, 0, 4,
		Divergence{Horizon: 600, MinAngle: math.Pi / 8}, m)
	if !ok || len(users) != 4 {
		t.Fatalf("FindDiverging: %v ok=%v", users, ok)
	}
	for _, u := range users {
		if u == 0 {
			t.Fatal("issuer must be excluded")
		}
	}
}

func TestFindDivergingParallelUsersFail(t *testing.T) {
	// All users move in the same direction: no divergence possible.
	store := phl.NewStore()
	idx := stindex.NewGrid(200, 600)
	for i := 0; i < 6; i++ {
		u := phl.UserID(i)
		for step := int64(0); step <= 6; step++ {
			p := pt(float64(step)*100, float64(i)*10, step*100)
			store.Record(u, p)
			idx.Insert(u, p)
		}
	}
	users, ok := FindDiverging(idx, store, 0, geo.Point{}, 0, 3,
		Divergence{MinAngle: math.Pi / 4}, geo.STMetric{TimeScale: 1})
	if ok {
		t.Fatalf("parallel users must not form a mix zone: got %v", users)
	}
	if len(users) != 1 {
		t.Fatalf("only the first parallel user is kept, got %v", users)
	}
}

func TestFindDivergingStationaryUsersSkipped(t *testing.T) {
	store := phl.NewStore()
	idx := stindex.NewGrid(200, 600)
	// Two movers and one stationary user.
	for step := int64(0); step <= 6; step++ {
		for _, rec := range []struct {
			u phl.UserID
			p geo.STPoint
		}{
			{1, pt(float64(step)*100, 0, step*100)},
			{2, pt(-float64(step)*100, 0, step*100)},
			{3, pt(5, 5, step*100)},
		} {
			store.Record(rec.u, rec.p)
			idx.Insert(rec.u, rec.p)
		}
	}
	users, ok := FindDiverging(idx, store, 0, geo.Point{}, 0, 2,
		Divergence{MinAngle: math.Pi / 4}, geo.STMetric{TimeScale: 1})
	if !ok || len(users) != 2 {
		t.Fatalf("FindDiverging: %v ok=%v", users, ok)
	}
	for _, u := range users {
		if u == 3 {
			t.Fatal("stationary user must be skipped")
		}
	}
}

func TestFindDivergingZeroK(t *testing.T) {
	store, idx := starDB(4)
	users, ok := FindDiverging(idx, store, 0, geo.Point{}, 0, 0, Divergence{}, geo.STMetric{})
	if !ok || len(users) != 0 {
		t.Fatalf("k=0: %v %v", users, ok)
	}
}

func TestOnDemandPlan(t *testing.T) {
	store, idx := starDB(8)
	o := OnDemand{Quiet: 300, Margin: 50, Divergence: Divergence{MinAngle: math.Pi / 8}}
	plan, ok := o.Plan(idx, store, 0, geo.Point{}, 0, 4, geo.STMetric{TimeScale: 1})
	if !ok {
		t.Fatal("plan expected")
	}
	if len(plan.Participants) != 4 {
		t.Fatalf("participants=%d", len(plan.Participants))
	}
	if plan.Window != (geo.Interval{Start: 0, End: 300}) {
		t.Fatalf("window=%v", plan.Window)
	}
	if !plan.Suppresses(geo.Point{X: 0, Y: 0}, 100) {
		t.Fatal("zone must suppress at its center during the window")
	}
	if plan.Suppresses(geo.Point{X: 0, Y: 0}, 400) {
		t.Fatal("zone must not suppress after the window")
	}
	if plan.Suppresses(geo.Point{X: 1e6, Y: 0}, 100) {
		t.Fatal("zone must not suppress far away")
	}
}

func TestOnDemandPlanFailure(t *testing.T) {
	store, idx := starDB(2) // issuer 0 + only one other mover
	o := OnDemand{}
	if _, ok := o.Plan(idx, store, 0, geo.Point{}, 0, 3, geo.STMetric{TimeScale: 1}); ok {
		t.Fatal("not enough users for a 3-participant zone")
	}
}
