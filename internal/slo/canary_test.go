package slo

import (
	"sync"
	"testing"
	"time"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// fakeStore scripts LTConsistentUsers per pseudonym series (keyed by the
// issuer carried in the first box's time start — see mkCapture).
type fakeStore struct {
	mu    sync.Mutex
	calls int
	fn    func(boxes []geo.STBox) []phl.UserID
}

func (f *fakeStore) LTConsistentUsers(boxes []geo.STBox) []phl.UserID {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	if f.fn == nil {
		return nil
	}
	return f.fn(boxes)
}

func (f *fakeStore) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// fakeClock drives the canary's wall clock deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestCanary(opts CanaryOptions) (*Canary, *fakeClock) {
	c := NewCanary(opts)
	// Base wall time far enough from zero that the first probe clears
	// the rate-limit gate (which starts at wall 0) for any interval.
	clk := &fakeClock{t: time.Unix(1_000_000_000, 0)}
	c.now = clk.now
	return c, clk
}

func box(x float64, t int64) geo.STBox {
	return geo.STBox{
		Area: geo.Rect{MinX: x, MinY: 0, MaxX: x + 10, MaxY: 10},
		Time: geo.Interval{Start: t, End: t + 60},
	}
}

func cap4(t, user int64, pseu string) Decision {
	return Decision{
		T: t, User: user, Pseudonym: pseu,
		Generalized: true, Forwarded: true,
		Box: box(float64(user), t),
	}
}

func TestCanaryAttackScoring(t *testing.T) {
	// Series "a" (user 1): unique candidate = the issuer → identified.
	// Series "b" (user 2): 4 candidates → 1/4 link probability.
	store := &fakeStore{fn: func(boxes []geo.STBox) []phl.UserID {
		if boxes[0].Area.MinX == 1 {
			return []phl.UserID{1}
		}
		return []phl.UserID{2, 3, 4, 5}
	}}
	c, _ := newTestCanary(CanaryOptions{Store: store, Interval: time.Second})
	c.capture(cap4(100, 1, "a"))
	c.capture(cap4(101, 1, "a"))
	c.capture(cap4(102, 2, "b"))

	res, ok := c.Probe()
	if !ok {
		t.Fatal("probe skipped")
	}
	if res.Captures != 3 || res.Series != 2 || res.Attacked != 2 {
		t.Fatalf("result = %+v", res)
	}
	if res.Identified != 1 {
		t.Fatalf("Identified = %d", res.Identified)
	}
	if want := (1.0 + 0.25) / 2; res.LinkProbability != want {
		t.Fatalf("LinkProbability = %g, want %g", res.LinkProbability, want)
	}
	if want := (1.0 + 4.0) / 2; res.AnonSetMean != want {
		t.Fatalf("AnonSetMean = %g, want %g", res.AnonSetMean, want)
	}
	if res.ReidentifiedRatio() != 0.5 {
		t.Fatalf("ReidentifiedRatio = %g", res.ReidentifiedRatio())
	}
	if res.T != 102 {
		t.Fatalf("T = %d", res.T)
	}
	// No pseudonym rotation in the captures: cross-rotation is -1.
	if res.CrossRotationMax != -1 {
		t.Fatalf("CrossRotationMax = %g, want -1", res.CrossRotationMax)
	}
	if store.Calls() != 2 {
		t.Fatalf("store attacked %d times, want 2", store.Calls())
	}
}

func TestCanaryCrossRotation(t *testing.T) {
	store := &fakeStore{fn: func([]geo.STBox) []phl.UserID { return []phl.UserID{1, 2} }}
	c, _ := newTestCanary(CanaryOptions{Store: store, Interval: time.Second})
	// User 7 rotates pseudonym mid-ring with spatially continuous,
	// closely-timed requests: the Tracking linker should assign a
	// nonnegative stitching likelihood.
	for i := int64(0); i < 6; i++ {
		pseu := "p1"
		if i >= 3 {
			pseu = "p2"
		}
		d := cap4(100+i*10, 7, pseu)
		d.Box = box(float64(i), 100+i*10)
		c.capture(d)
	}
	res, ok := c.Probe()
	if !ok {
		t.Fatal("probe skipped")
	}
	if res.CrossRotationMax < 0 {
		t.Fatalf("CrossRotationMax = %g, want >= 0 across a rotation", res.CrossRotationMax)
	}
}

func TestCanaryRateLimit(t *testing.T) {
	store := &fakeStore{fn: func([]geo.STBox) []phl.UserID { return []phl.UserID{1} }}
	c, clk := newTestCanary(CanaryOptions{Store: store, Interval: 5 * time.Second})
	c.capture(cap4(100, 1, "a"))

	if _, ok := c.Probe(); !ok {
		t.Fatal("first probe must run")
	}
	if _, ok := c.Probe(); ok {
		t.Fatal("second probe inside the interval must skip")
	}
	clk.advance(2 * time.Second)
	if _, ok := c.Probe(); ok {
		t.Fatal("probe 2s into a 5s interval must skip")
	}
	clk.advance(4 * time.Second)
	if _, ok := c.Probe(); !ok {
		t.Fatal("probe after the interval must run")
	}
	if c.Probes() != 2 {
		t.Fatalf("Probes = %d, want 2", c.Probes())
	}
	_, rl, _ := c.Skips()
	if rl != 2 {
		t.Fatalf("rate-limit skips = %d, want 2", rl)
	}
}

func TestCanaryRateLimitConcurrent(t *testing.T) {
	// Many goroutines racing Probe inside one interval: exactly one
	// probe runs (the CAS gate admits one winner).
	store := &fakeStore{fn: func([]geo.STBox) []phl.UserID { return []phl.UserID{1} }}
	c, _ := newTestCanary(CanaryOptions{Store: store, Interval: time.Hour})
	c.capture(cap4(100, 1, "a"))

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				c.Probe()
			}
		}()
	}
	// Concurrent captures must not race the probes.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(0); i < 200; i++ {
			c.capture(cap4(200+i, i%5, "p"))
		}
	}()
	wg.Wait()
	if c.Probes() != 1 {
		t.Fatalf("Probes = %d, want exactly 1", c.Probes())
	}
	// The single probe attacks one store call per pseudonym series it
	// snapshotted (1 or 2, depending on how the capture goroutine raced).
	if calls := store.Calls(); calls < 1 || calls > 2 {
		t.Fatalf("store attacked %d times across 1 probe", calls)
	}
}

func TestCanaryPressureDefersSilently(t *testing.T) {
	underPressure := true
	store := &fakeStore{fn: func([]geo.STBox) []phl.UserID { return []phl.UserID{1} }}
	c, clk := newTestCanary(CanaryOptions{
		Store: store, Interval: time.Second,
		Pressure: func() bool { return underPressure },
	})
	c.capture(cap4(100, 1, "a"))

	for i := 0; i < 3; i++ {
		if _, ok := c.Probe(); ok {
			t.Fatal("probe under pressure must skip")
		}
		clk.advance(2 * time.Second)
	}
	p, _, _ := c.Skips()
	if p != 3 {
		t.Fatalf("pressure skips = %d, want 3", p)
	}
	if store.Calls() != 0 {
		t.Fatal("the store must not be touched under pressure")
	}
	// Starved long enough, the canary reads stale (it has work but no
	// probe has succeeded) — the /healthz degradation signal.
	if !c.Stale() {
		t.Fatal("starved canary must read stale")
	}
	if c.AgeSeconds() != -1 {
		t.Fatalf("AgeSeconds = %g before any probe", c.AgeSeconds())
	}

	// Pressure lifts: the next probe runs and staleness clears.
	underPressure = false
	if _, ok := c.Probe(); !ok {
		t.Fatal("probe after pressure lifts must run")
	}
	if c.Stale() {
		t.Fatal("fresh canary must not read stale")
	}
	clk.advance(10 * time.Second) // > 3 intervals
	if !c.Stale() {
		t.Fatal("canary must go stale three intervals after its last probe")
	}
}

func TestCanaryEmptyRingSkips(t *testing.T) {
	store := &fakeStore{}
	c, _ := newTestCanary(CanaryOptions{Store: store, Interval: time.Second})
	if _, ok := c.Probe(); ok {
		t.Fatal("probe over an empty ring must skip")
	}
	_, _, empty := c.Skips()
	if empty != 1 {
		t.Fatalf("empty skips = %d, want 1", empty)
	}
	if c.Stale() {
		t.Fatal("a canary with nothing to attack is not stale")
	}
}

func TestCanaryRingAndSampling(t *testing.T) {
	store := &fakeStore{}
	c, _ := newTestCanary(CanaryOptions{Store: store, Interval: time.Second, RingSize: 4, SampleEvery: 2})
	for i := int64(0); i < 16; i++ {
		c.capture(cap4(100+i, i, "p"))
	}
	// Every 2nd of 16 offered = 8 admitted; the ring keeps the last 4.
	if got := c.Captured(); got != 4 {
		t.Fatalf("Captured = %d, want 4", got)
	}
	caps := c.snapshotRing()
	for _, cp := range caps {
		if cp.t < 100+8 {
			t.Fatalf("ring kept a stale capture t=%d", cp.t)
		}
	}
}

func TestCanaryReadOnlyAgainstLiveStore(t *testing.T) {
	// Run real probes against a real PHL store and pin that the store's
	// contents are byte-for-byte untouched: same users, same sample
	// count. AttackStore makes writes impossible by construction; this
	// pins the property against interface drift.
	store := phl.NewStore()
	for u := phl.UserID(0); u < 10; u++ {
		for d := int64(0); d < 3; d++ {
			store.Record(u, geo.STPoint{P: geo.Point{X: float64(u), Y: float64(u)}, T: d * 86400})
		}
	}
	users, samples := store.NumUsers(), store.NumSamples()

	c, clk := newTestCanary(CanaryOptions{Store: store, Interval: time.Second})
	for i := int64(0); i < 8; i++ {
		d := cap4(0, int64(i%4), "p")
		d.Box = geo.STBox{
			Area: geo.Rect{MinX: -1, MinY: -1, MaxX: 20, MaxY: 20},
			Time: geo.Interval{Start: 0, End: 86400 * 3},
		}
		c.capture(d)
	}
	for i := 0; i < 5; i++ {
		if _, ok := c.Probe(); !ok {
			t.Fatalf("probe %d skipped", i)
		}
		clk.advance(2 * time.Second)
	}
	if store.NumUsers() != users || store.NumSamples() != samples {
		t.Fatalf("canary mutated the store: users %d->%d samples %d->%d",
			users, store.NumUsers(), samples, store.NumSamples())
	}
}

func TestCanaryNilStorePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewCanary with a nil store must panic")
		}
	}()
	NewCanary(CanaryOptions{})
}

func TestCanaryRunLoop(t *testing.T) {
	store := &fakeStore{fn: func([]geo.STBox) []phl.UserID { return []phl.UserID{1} }}
	c := NewCanary(CanaryOptions{Store: store, Interval: 5 * time.Millisecond})
	c.capture(cap4(100, 1, "a"))
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() { c.Run(stop); close(done) }()
	deadline := time.Now().Add(2 * time.Second)
	for c.Probes() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
	if c.Probes() == 0 {
		t.Fatal("Run never probed")
	}
}
