// Differential test: the SLO engine's windowed achieved-k aggregates
// must agree bit-exactly with obs.ReplayAchievedK over the audit log for
// the same logical interval. Both sides observe the same decision stream
// from a real server pipeline — the engine through ts.finishRequest, the
// replay through the KindRequest audit records — so any divergence means
// the live aggregation has drifted from the audited ground truth.
//
// External test package: sim imports ts which imports slo.

package slo_test

import (
	"bytes"
	"testing"

	"histanon/internal/metrics"
	"histanon/internal/obs"
	"histanon/internal/phl"
	"histanon/internal/sim"
	"histanon/internal/slo"
)

func TestWindowedAchievedKMatchesAuditReplay(t *testing.T) {
	server := sim.NewThroughputServer(sim.ThroughputClients)
	var audit bytes.Buffer
	server.Obs.SetAudit(obs.NewAuditLog(&audit))
	server.SLO.SetEnabled(true)

	// Drive the full pipeline: every request is monitored, generalized
	// and forwarded, so both the audit log and the engine see it. The
	// workload timestamps are monotone (i second steps within a day).
	const n = 3000
	for i := 0; i < n; i++ {
		sim.ThroughputRequest(server, phl.UserID(i%sim.ThroughputClients), i)
	}
	if err := server.Obs.AuditSink().Flush(); err != nil {
		t.Fatal(err)
	}
	if server.SLO.DecisionsTotal() == 0 {
		t.Fatal("the engine observed nothing")
	}

	// Pick an interval on bucket boundaries inside the longest window's
	// reach from the engine's logical now.
	now := server.SLO.Now()
	start, end := now-120, now-30
	snap, ok := server.SLO.IntervalSnapshot(start, end)
	if !ok {
		t.Fatalf("IntervalSnapshot(%d, %d) rejected", start, end)
	}
	if snap.Decisions == 0 {
		t.Fatalf("interval [%d,%d) is empty; now=%d", start, end, now)
	}

	// Replay the audit log for the same interval: the same filter
	// ReplayAchievedK applies (KindRequest with AchievedK>0), restricted
	// to [start, end).
	events, err := obs.ReadEvents(bytes.NewReader(audit.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	replayed := metrics.NewHistogram(obs.AchievedKBuckets())
	var decisions int64
	for _, e := range events {
		if e.T < start || e.T >= end {
			continue
		}
		if e.Kind == obs.KindRequest {
			decisions++
			if e.AchievedK > 0 {
				replayed.Observe(float64(e.AchievedK))
			}
		}
	}

	// Bit-exact agreement, bucket for bucket.
	got := snap.AchievedKHistogram().BucketCounts()
	want := replayed.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count mismatch: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: engine=%d replay=%d\nengine: %v\nreplay: %v",
				i, got[i], want[i], got, want)
		}
	}
	if snap.Decisions != decisions {
		t.Fatalf("interval decisions: engine=%d audit=%d", snap.Decisions, decisions)
	}

	// The full-log replay (the existing offline tool) must agree with the
	// engine's lifetime view too: every audited achieved-k was observed.
	full, err := obs.ReplayAchievedK(bytes.NewReader(audit.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if full.Count() != server.SLO.DecisionsTotal() {
		t.Fatalf("lifetime: audit replay holds %d, engine observed %d",
			full.Count(), server.SLO.DecisionsTotal())
	}
}

// TestEngineOffUnderSameWorkload pins the off-path contract: with the
// engine disabled the same workload records nothing — the one-atomic-load
// discipline has no side effects.
func TestEngineOffUnderSameWorkload(t *testing.T) {
	server := sim.NewThroughputServer(sim.ThroughputClients)
	for i := 0; i < 200; i++ {
		sim.ThroughputRequest(server, phl.UserID(i%sim.ThroughputClients), i)
	}
	if got := server.SLO.DecisionsTotal(); got != 0 {
		t.Fatalf("disabled engine observed %d decisions", got)
	}
	if server.SLO.Now() != -1 {
		t.Fatalf("disabled engine advanced its clock to %d", server.SLO.Now())
	}
}

// TestCanaryTracksOfflineAttack wires a canary to the live server and
// checks the link probability it reports against the offline
// LT-consistency attack run over the same captured series — the
// acceptance bound from the issue (identical candidate sets, so the
// numbers must match exactly, not just within tolerance).
func TestCanaryTracksOfflineAttack(t *testing.T) {
	server := sim.NewThroughputServer(sim.ThroughputClients)
	store, ok := server.Store().(slo.AttackStore)
	if !ok {
		t.Fatal("server store does not expose the attack read")
	}
	canary := slo.NewCanary(slo.CanaryOptions{Store: store})
	server.SLO.AttachCanary(canary)
	server.SLO.SetEnabled(true)

	for i := 0; i < 500; i++ {
		sim.ThroughputRequest(server, phl.UserID(i%sim.ThroughputClients), i)
	}
	if canary.Captured() == 0 {
		t.Fatal("the canary captured nothing from the decision path")
	}
	res, ok := canary.Probe()
	if !ok {
		t.Fatal("probe skipped")
	}
	if res.Attacked == 0 {
		t.Fatalf("probe attacked nothing: %+v", res)
	}
	// The requests are k=5-generalized over a 60-user crowd: the attack
	// must not fully re-identify anyone, and the link probability must
	// stay at or below 1/k.
	if res.Identified != 0 {
		t.Fatalf("canary re-identified %d series under k=5 generalization", res.Identified)
	}
	if res.LinkProbability > 1.0/5+1e-9 {
		t.Fatalf("LinkProbability = %g, want <= 1/5", res.LinkProbability)
	}
	if res.AnonSetMean < 5 {
		t.Fatalf("AnonSetMean = %g, want >= 5 under k=5", res.AnonSetMean)
	}
}
