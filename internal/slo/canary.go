// The re-identification canary: a background probe that periodically
// replays recently forwarded generalized requests through the paper's
// LT-consistency attack (Def. 7 intersected per pseudonym series, the
// same attack the PR 8 comparison harness runs offline) against the
// live store. The canary is the adversary's view run continuously by
// the defender: if generalization weakens — population thins, policies
// loosen, an index bug ships — the canary's link probability rises
// before any user is actually identified by a real attacker.
//
// Safety properties, each pinned by tests:
//
//   - Read-only by construction: the canary sees the store through
//     AttackStore, an interface carrying only LTConsistentUsers.
//   - Rate-limited: probes run at most once per Interval of wall time,
//     no matter how often Probe is called.
//   - Pressure-deferent: when the server is shedding load the canary
//     skips its probe silently — the gauges go stale (age climbs,
//     /healthz notes it) instead of competing with admission.

package slo

import (
	"sync"
	"sync/atomic"
	"time"

	"histanon/internal/geo"
	"histanon/internal/link"
	"histanon/internal/phl"
	"histanon/internal/wire"
)

// AttackStore is the canary's view of the live store: exactly the one
// read the LT-consistency attack needs, and nothing that can mutate.
// Both *phl.Store and the tiered storage backend satisfy it.
type AttackStore interface {
	LTConsistentUsers(boxes []geo.STBox) []phl.UserID
}

// CanaryOptions configures a canary. Zero fields get defaults.
type CanaryOptions struct {
	// Store is the live store the attack runs against. Required.
	Store AttackStore
	// Interval is the minimum wall time between probes (default 5s).
	Interval time.Duration
	// RingSize bounds the capture ring (default 512 captures).
	RingSize int
	// SampleEvery captures every Nth forwarded generalized request
	// (default 1: capture all — the ring bound, not sampling, limits
	// memory; raise it on very hot deployments).
	SampleEvery int
	// MaxSeries and MaxBoxes cap each probe's work: at most MaxSeries
	// pseudonym series attacked, at most MaxBoxes boxes intersected per
	// series (defaults 64 and 16).
	MaxSeries int
	MaxBoxes  int
	// Pressure, when set, reports whether the server is under admission
	// pressure; probes are skipped (and counted) while it returns true.
	Pressure func() bool
}

// capture is one ring entry: a forwarded generalized request as the
// service provider saw it, plus the ground-truth issuer.
type capture struct {
	t    int64
	user int64
	pseu string
	box  geo.STBox
}

// CanaryResult is one probe's outcome.
type CanaryResult struct {
	// WallNano is when the probe ran; T is the newest capture's logical
	// timestamp.
	WallNano int64 `json:"-"`
	T        int64 `json:"t"`
	// Captures is how many ring entries the probe attacked over; Series
	// is how many pseudonym series they formed; Attacked ≤ Series after
	// the MaxSeries cap.
	Captures int `json:"captures"`
	Series   int `json:"series"`
	Attacked int `json:"attacked"`
	// Identified counts series whose LT-consistent candidate set was
	// exactly the issuer — full re-identification.
	Identified int `json:"identified"`
	// AnonSetMean is the mean candidate-set size over attacked series
	// (the paper's anonymity set; ≥ 1 because the issuer is always
	// consistent with their own boxes).
	AnonSetMean float64 `json:"anon_set_mean"`
	// LinkProbability is the mean probability the attack assigns to the
	// correct user: 1/|candidates| per series, 1.0 when re-identified.
	LinkProbability float64 `json:"link_probability"`
	// CrossRotationMax is the strongest Tracking-linker likelihood
	// stitching a user's consecutive pseudonym segments back together
	// (−1 when the captures span no rotation).
	CrossRotationMax float64 `json:"cross_rotation_max"`
}

// ReidentifiedRatio returns Identified/Attacked, 0 with no series.
func (r CanaryResult) ReidentifiedRatio() float64 {
	return ratio(int64(r.Identified), int64(r.Attacked))
}

// Canary is the live re-identification probe. Construct with
// NewCanary; attach to an engine with Engine.AttachCanary.
type Canary struct {
	store       AttackStore
	interval    time.Duration
	sampleEvery int64
	maxSeries   int
	maxBoxes    int
	pressure    func() bool

	seq atomic.Int64 // forwarded-capture sequence, drives sampling

	mu   sync.Mutex
	ring []capture
	n    int // entries written; min(n, len(ring)) are valid

	lastProbeWall atomic.Int64 // wall nanos of last successful probe
	probeGate     atomic.Int64 // wall nanos gate for the rate limit
	probes        atomic.Int64
	skipPressure  atomic.Int64
	skipRateLimit atomic.Int64
	skipEmpty     atomic.Int64
	last          atomic.Pointer[CanaryResult]

	// now is the wall clock, swappable in tests.
	now func() time.Time
}

// NewCanary returns a canary over the given options. It panics when
// Store is nil (a wiring-time error).
func NewCanary(opts CanaryOptions) *Canary {
	if opts.Store == nil {
		panic("slo: canary needs a store")
	}
	if opts.Interval <= 0 {
		opts.Interval = 5 * time.Second
	}
	if opts.RingSize <= 0 {
		opts.RingSize = 512
	}
	if opts.SampleEvery <= 0 {
		opts.SampleEvery = 1
	}
	if opts.MaxSeries <= 0 {
		opts.MaxSeries = 64
	}
	if opts.MaxBoxes <= 0 {
		opts.MaxBoxes = 16
	}
	return &Canary{
		store:       opts.Store,
		interval:    opts.Interval,
		sampleEvery: int64(opts.SampleEvery),
		maxSeries:   opts.MaxSeries,
		maxBoxes:    opts.MaxBoxes,
		pressure:    opts.Pressure,
		ring:        make([]capture, opts.RingSize),
		now:         time.Now,
	}
}

// capture records one forwarded generalized decision into the ring
// (called by Engine.Observe). Sampling is an atomic increment; admitted
// captures take a short mutex to write one ring slot.
func (c *Canary) capture(d Decision) {
	if c.seq.Add(1)%c.sampleEvery != 0 {
		return
	}
	c.mu.Lock()
	c.ring[c.n%len(c.ring)] = capture{t: d.T, user: d.User, pseu: d.Pseudonym, box: d.Box}
	c.n++
	c.mu.Unlock()
}

// Captured returns how many decisions are currently in the ring.
func (c *Canary) Captured() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.n < len(c.ring) {
		return c.n
	}
	return len(c.ring)
}

// Probe runs one attack round if the rate limit allows and the server
// is not under pressure. It returns the result and ok=true when a probe
// actually ran; ok=false means the probe was skipped (rate limit,
// pressure, or an empty ring) and the previous result stands.
func (c *Canary) Probe() (CanaryResult, bool) {
	now := c.now().UnixNano()
	gate := c.probeGate.Load()
	if now-gate < int64(c.interval) {
		c.skipRateLimit.Add(1)
		return CanaryResult{}, false
	}
	if !c.probeGate.CompareAndSwap(gate, now) {
		c.skipRateLimit.Add(1)
		return CanaryResult{}, false
	}
	if c.pressure != nil && c.pressure() {
		c.skipPressure.Add(1)
		return CanaryResult{}, false
	}
	caps := c.snapshotRing()
	if len(caps) == 0 {
		c.skipEmpty.Add(1)
		return CanaryResult{}, false
	}
	res := c.attack(caps)
	res.WallNano = c.now().UnixNano()
	c.last.Store(&res)
	c.lastProbeWall.Store(res.WallNano)
	c.probes.Add(1)
	return res, true
}

// snapshotRing copies the valid ring entries out under the mutex.
func (c *Canary) snapshotRing() []capture {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := c.n
	if k > len(c.ring) {
		k = len(c.ring)
	}
	out := make([]capture, k)
	copy(out, c.ring[:k])
	return out
}

// attack replays the captures through the LT-consistency attack: group
// forwarded boxes by pseudonym (the identity the SP actually sees),
// intersect each series' candidates store-wide, and score how often the
// intersection is exactly the issuer — the same measure the offline
// comparison harness reports as ReidPct/MeanAnonSet.
func (c *Canary) attack(caps []capture) CanaryResult {
	res := CanaryResult{Captures: len(caps), CrossRotationMax: -1}
	type ser struct {
		user  int64
		boxes []geo.STBox
	}
	series := map[string]*ser{}
	var order []string
	for _, cp := range caps {
		if cp.t > res.T {
			res.T = cp.t
		}
		s := series[cp.pseu]
		if s == nil {
			s = &ser{user: cp.user}
			series[cp.pseu] = s
			order = append(order, cp.pseu)
		}
		if len(s.boxes) < c.maxBoxes {
			s.boxes = append(s.boxes, cp.box)
		}
	}
	res.Series = len(order)
	var anonSum, probSum float64
	for _, pseu := range order {
		if res.Attacked >= c.maxSeries {
			break
		}
		s := series[pseu]
		cands := c.store.LTConsistentUsers(s.boxes)
		res.Attacked++
		anonSum += float64(len(cands))
		if len(cands) == 1 && int64(cands[0]) == s.user {
			res.Identified++
			probSum += 1
		} else if len(cands) > 0 {
			probSum += 1 / float64(len(cands))
		}
	}
	if res.Attacked > 0 {
		res.AnonSetMean = anonSum / float64(res.Attacked)
		res.LinkProbability = probSum / float64(res.Attacked)
	}
	res.CrossRotationMax = c.crossRotation(caps)
	return res
}

// crossRotation measures how strongly the Tracking linker stitches a
// user's consecutive pseudonym segments back together across rotations
// — the attack pseudonym changes alone do not stop. Returns the maximum
// likelihood over all rotation boundaries in the captures, or −1 when
// no user rotated inside the ring.
func (c *Canary) crossRotation(caps []capture) float64 {
	perUser := map[int64][]capture{}
	var users []int64
	for _, cp := range caps {
		if _, seen := perUser[cp.user]; !seen {
			users = append(users, cp.user)
		}
		perUser[cp.user] = append(perUser[cp.user], cp)
	}
	tracker := link.Tracking{}
	toWire := func(cs []capture) []*wire.Request {
		out := make([]*wire.Request, len(cs))
		for i, cp := range cs {
			out[i] = &wire.Request{Context: cp.box}
		}
		return out
	}
	best := -1.0
	for _, u := range users {
		cs := perUser[u]
		for j := 1; j < len(cs); j++ {
			if cs[j].pseu == cs[j-1].pseu {
				continue
			}
			lo := j - 3
			if lo < 0 {
				lo = 0
			}
			hi := j + 3
			if hi > len(cs) {
				hi = len(cs)
			}
			if l := link.MaxPairLikelihood(toWire(cs[lo:j]), toWire(cs[j:hi]), tracker); l > best {
				best = l
			}
		}
	}
	return best
}

// Run probes on a ticker until stop is closed — the background loop
// lbserve starts when -canary-interval > 0. Rate limiting still applies
// inside Probe, so a short ticker cannot out-probe the interval.
func (c *Canary) Run(stop <-chan struct{}) {
	tick := time.NewTicker(c.interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			c.Probe()
		}
	}
}

// Last returns the most recent probe result and whether one exists.
func (c *Canary) Last() (CanaryResult, bool) {
	if p := c.last.Load(); p != nil {
		return *p, true
	}
	return CanaryResult{}, false
}

// AgeSeconds returns the wall seconds since the last successful probe,
// or −1 when none has run yet. /healthz flags the canary stale when
// this exceeds a few intervals.
func (c *Canary) AgeSeconds() float64 {
	last := c.lastProbeWall.Load()
	if last == 0 {
		return -1
	}
	return float64(c.now().UnixNano()-last) / 1e9
}

// Stale reports whether the canary has captures to attack but has not
// probed successfully within three intervals — the /healthz degraded
// signal that pressure or failures are starving the canary.
func (c *Canary) Stale() bool {
	if c.Captured() == 0 {
		return false
	}
	age := c.AgeSeconds()
	return age < 0 || age > 3*c.interval.Seconds()
}

// Probes returns how many probes have completed.
func (c *Canary) Probes() int64 { return c.probes.Load() }

// Skips returns the probe-skip counts by cause.
func (c *Canary) Skips() (pressure, rateLimit, empty int64) {
	return c.skipPressure.Load(), c.skipRateLimit.Load(), c.skipEmpty.Load()
}
