// Objective specs, the multi-window burn-rate state machine, and metric
// registration. The alerting model is the SRE burn-rate scheme: an
// objective grants an error budget (e.g. "at most 0.1% of decisions may
// fall below the requested k"), the burn rate is how many times faster
// than budget the deployment is spending it, and a state escalates only
// when BOTH a fast and a slow window agree — the fast window for
// reaction time, the slow one to reject blips.

package slo

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"histanon/internal/metrics"
	"histanon/internal/obs"
)

// Signals an objective can bound: the fraction of decisions that fell
// below the requested k, were suppressed, or were degraded (fail-closed
// admission refusals).
const (
	SignalBelowK      = "below_k"
	SignalSuppression = "suppression"
	SignalDegraded    = "degraded"
)

// Burn-rate state of one objective.
type State int

const (
	StateOK State = iota
	StateWarning
	StatePage
)

// String returns "ok", "warning" or "page".
func (s State) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarning:
		return "warning"
	case StatePage:
		return "page"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Objective is one privacy objective: a signal, its error budget, and
// the burn multiples that trigger each alert tier.
type Objective struct {
	// Signal is SignalBelowK, SignalSuppression or SignalDegraded.
	Signal string
	// Budget is the allowed bad-decision fraction (0 < Budget < 1); a
	// burn rate of 1.0 means the deployment spends exactly its budget.
	Budget float64
	// WarnBurn pages nobody but flags the objective when both the mid
	// and long windows burn at ≥ this multiple (default 2).
	WarnBurn float64
	// PageBurn escalates to page when both the short and mid windows
	// burn at ≥ this multiple (default 10). Must be ≥ WarnBurn.
	PageBurn float64
	// MinDecisions is the minimum decision count a window needs before
	// its burn rate counts as evidence (default 10): an empty or
	// near-empty window neither raises nor sustains an alert.
	MinDecisions int64
}

// DefaultObjectives returns the single default objective:
// below_k < 0.1% of decisions, warn at 2x burn, page at 10x.
func DefaultObjectives() []Objective {
	return []Objective{{
		Signal:       SignalBelowK,
		Budget:       0.001,
		WarnBurn:     2,
		PageBurn:     10,
		MinDecisions: 10,
	}}
}

// Spec renders the objective back into the spec syntax ParseObjectives
// accepts.
func (o Objective) Spec() string {
	return fmt.Sprintf("%s<%s%%;warn=%s;page=%s", o.Signal,
		strconv.FormatFloat(o.Budget*100, 'g', -1, 64),
		strconv.FormatFloat(o.WarnBurn, 'g', -1, 64),
		strconv.FormatFloat(o.PageBurn, 'g', -1, 64))
}

// ratio extracts the objective's signal from a window snapshot.
func (o Objective) ratio(s WindowSnapshot) float64 {
	switch o.Signal {
	case SignalSuppression:
		return s.SuppressionRatio()
	case SignalDegraded:
		return s.DegradedRatio()
	default:
		return s.BelowKRatio()
	}
}

// ParseObjectives parses a comma-separated objective spec list, e.g.
//
//	below_k<0.1%
//	below_k<0.1%;warn=2;page=10,suppression<5%
//
// Each item is signal '<' budget '%' with optional ';warn=F', ';page=F'
// and ';min=N' options. Budgets must be in (0, 100) percent; burn
// multiples must be ≥ 1 with page ≥ warn; min must be ≥ 0.
func ParseObjectives(spec string) ([]Objective, error) {
	var out []Objective
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		o, err := parseObjective(item)
		if err != nil {
			return nil, err
		}
		for _, prev := range out {
			if prev.Signal == o.Signal {
				return nil, fmt.Errorf("slo: duplicate objective for signal %q", o.Signal)
			}
		}
		out = append(out, o)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: empty objective spec")
	}
	return out, nil
}

func parseObjective(item string) (Objective, error) {
	o := Objective{WarnBurn: 2, PageBurn: 10, MinDecisions: 10}
	parts := strings.Split(item, ";")
	head := strings.TrimSpace(parts[0])
	sig, budget, ok := strings.Cut(head, "<")
	if !ok {
		return o, fmt.Errorf("slo: objective %q: want signal<budget%%", item)
	}
	sig = strings.TrimSpace(sig)
	switch sig {
	case SignalBelowK, SignalSuppression, SignalDegraded:
		o.Signal = sig
	default:
		return o, fmt.Errorf("slo: objective %q: unknown signal %q (want %s, %s or %s)",
			item, sig, SignalBelowK, SignalSuppression, SignalDegraded)
	}
	budget = strings.TrimSpace(budget)
	pct, ok := strings.CutSuffix(budget, "%")
	if !ok {
		return o, fmt.Errorf("slo: objective %q: budget %q must end in %%", item, budget)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(pct), 64)
	if err != nil {
		return o, fmt.Errorf("slo: objective %q: bad budget: %v", item, err)
	}
	if !(v > 0 && v < 100) {
		return o, fmt.Errorf("slo: objective %q: budget must be in (0, 100) percent, got %g", item, v)
	}
	o.Budget = v / 100
	// A subnormal percentage can pass v > 0 yet underflow the division:
	// a zero budget would make every burn rate +Inf.
	if o.Budget <= 0 {
		return o, fmt.Errorf("slo: objective %q: budget %g%% is too small", item, v)
	}
	for _, opt := range parts[1:] {
		opt = strings.TrimSpace(opt)
		if opt == "" {
			continue
		}
		key, val, ok := strings.Cut(opt, "=")
		if !ok {
			return o, fmt.Errorf("slo: objective %q: option %q: want key=value", item, opt)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		switch key {
		case "warn", "page":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return o, fmt.Errorf("slo: objective %q: bad %s: %v", item, key, err)
			}
			if f < 1 || f > 1e6 {
				return o, fmt.Errorf("slo: objective %q: %s must be in [1, 1e6], got %g", item, key, f)
			}
			if key == "warn" {
				o.WarnBurn = f
			} else {
				o.PageBurn = f
			}
		case "min":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return o, fmt.Errorf("slo: objective %q: bad min: %v", item, err)
			}
			if n < 0 {
				return o, fmt.Errorf("slo: objective %q: min must be ≥ 0, got %d", item, n)
			}
			o.MinDecisions = n
		default:
			return o, fmt.Errorf("slo: objective %q: unknown option %q", item, key)
		}
	}
	if o.PageBurn < o.WarnBurn {
		return o, fmt.Errorf("slo: objective %q: page burn %g below warn burn %g", item, o.PageBurn, o.WarnBurn)
	}
	return o, nil
}

// ParseWindows parses a comma-separated window list, e.g. "1m,10m,1h".
// Windows must be whole seconds, positive, strictly increasing, and at
// most 24h. Each token becomes the window's name.
func ParseWindows(spec string) ([]WindowSpec, error) {
	var out []WindowSpec
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		d, err := time.ParseDuration(item)
		if err != nil {
			return nil, fmt.Errorf("slo: window %q: %v", item, err)
		}
		if d <= 0 || d%time.Second != 0 {
			return nil, fmt.Errorf("slo: window %q must be a positive whole number of seconds", item)
		}
		if d > 24*time.Hour {
			return nil, fmt.Errorf("slo: window %q exceeds the 24h maximum", item)
		}
		sec := int64(d / time.Second)
		if len(out) > 0 && sec <= out[len(out)-1].Seconds {
			return nil, fmt.Errorf("slo: windows must be strictly increasing, %q does not extend %q",
				item, out[len(out)-1].Name)
		}
		out = append(out, WindowSpec{Name: item, Seconds: sec})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo: empty window spec")
	}
	return out, nil
}

// WindowBurn is one window's view of one objective at evaluation time.
type WindowBurn struct {
	Window    string
	Decisions int64
	Ratio     float64
	Burn      float64
}

// ObjectiveStatus is the evaluated state of one objective.
type ObjectiveStatus struct {
	Objective Objective
	State     State
	// Since is the logical time the objective entered its current state.
	Since int64
	Burns []WindowBurn
}

// EvalResult is one full evaluation of every objective.
type EvalResult struct {
	// T is the logical evaluation time.
	T          int64
	Objectives []ObjectiveStatus
}

// horizonWindows picks the short/mid/long evaluation horizons from the
// configured windows: first, middle, last (coinciding when fewer than
// three windows are configured).
func (e *Engine) horizonWindows() (short, mid, long WindowSpec) {
	n := len(e.windows)
	return e.windows[0], e.windows[n/2], e.windows[n-1]
}

// Evaluate runs the burn-rate state machine against the windows as of
// logical time now, emitting a KindSLO audit record and a transition
// count for every state change, and returns the evaluation. The hot
// path calls it via maybeEvaluate (bucket-edge triggered,
// wall-throttled); tests and the /v1/slo handler call it directly for a
// fresh view.
func (e *Engine) Evaluate(now int64) EvalResult {
	e.evalMu.Lock()
	defer e.evalMu.Unlock()

	short, mid, long := e.horizonWindows()
	snaps := make(map[string]WindowSnapshot, len(e.windows))
	for _, w := range e.windows {
		snaps[w.Name] = e.snapshotWindow(w, now)
	}

	res := EvalResult{T: now, Objectives: make([]ObjectiveStatus, len(e.objectives))}
	for i, o := range e.objectives {
		burns := make([]WindowBurn, len(e.windows))
		burnOf := make(map[string]WindowBurn, len(e.windows))
		for j, w := range e.windows {
			s := snaps[w.Name]
			b := WindowBurn{Window: w.Name, Decisions: s.Decisions, Ratio: o.ratio(s)}
			b.Burn = b.Ratio / o.Budget
			burns[j] = b
			burnOf[w.Name] = b
		}
		// A window is evidence only with enough decisions in it; an
		// under-filled window reads as burn 0 (no evidence of burn) so
		// idle deployments neither page nor stick in a stale state.
		evidence := func(w WindowSpec) float64 {
			b := burnOf[w.Name]
			if b.Decisions < o.MinDecisions {
				return 0
			}
			return b.Burn
		}
		next := StateOK
		switch {
		case evidence(short) >= o.PageBurn && evidence(mid) >= o.PageBurn:
			next = StatePage
		case evidence(mid) >= o.WarnBurn && evidence(long) >= o.WarnBurn:
			next = StateWarning
		}
		prev := e.states[i]
		if next != prev {
			e.states[i] = next
			e.since[i] = now
			e.transitions.Inc(o.Signal, next.String())
			if fn := e.audit.Load(); fn != nil {
				(*fn)(obs.Event{
					T:         now,
					Kind:      obs.KindSLO,
					Objective: o.Signal,
					SLOState:  next.String(),
					SLOFrom:   prev.String(),
					BurnRate:  burnOf[short.Name].Burn,
				})
			}
		}
		res.Objectives[i] = ObjectiveStatus{
			Objective: o,
			State:     e.states[i],
			Since:     e.since[i],
			Burns:     burns,
		}
	}
	e.lastEval.Store(&res)
	return res
}

// LastEval returns the most recent evaluation, or a zero-objective
// result when none has run yet.
func (e *Engine) LastEval() EvalResult {
	if p := e.lastEval.Load(); p != nil {
		return *p
	}
	return EvalResult{T: -1}
}

// State returns the current burn-rate state of the objective bounding
// signal, and ok=false when no such objective is configured.
func (e *Engine) State(signal string) (State, bool) {
	e.evalMu.Lock()
	defer e.evalMu.Unlock()
	for i, o := range e.objectives {
		if o.Signal == signal {
			return e.states[i], true
		}
	}
	return StateOK, false
}

// WorstState returns the most severe state across all objectives.
func (e *Engine) WorstState() State {
	e.evalMu.Lock()
	defer e.evalMu.Unlock()
	worst := StateOK
	for _, s := range e.states {
		if s > worst {
			worst = s
		}
	}
	return worst
}

// Transitions returns the state-transition counter family (labels:
// objective, to), for tests and exposition.
func (e *Engine) Transitions() *metrics.CounterVec { return e.transitions }

// RegisterMetrics registers every histanon_slo_* family on r. Gauges
// read live window aggregates at scrape time; a disabled engine exposes
// zeros. Canary families are registered by Canary.RegisterMetrics.
func (e *Engine) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCounterFunc(obs.MetricSLODecisions,
		"Decisions observed by the privacy-SLO engine.",
		nil, e.DecisionsTotal)
	r.RegisterCounterFunc(obs.MetricSLOBelowK,
		"Decisions whose achieved k fell below the requested k.",
		nil, e.BelowKTotal)
	r.RegisterCounterFunc(obs.MetricSLODroppedLate,
		"Decisions too old for the SLO window ring, dropped unaggregated.",
		nil, e.DroppedLate)
	for _, w := range e.windows {
		w := w
		snap := func() WindowSnapshot { return e.snapshotWindow(w, e.maxT.Load()) }
		r.RegisterGaugeFunc(obs.MetricSLOBelowKRatio,
			"Fraction of window decisions below the requested k.",
			metrics.Labels{"window": w.Name},
			func() float64 { return snap().BelowKRatio() })
		r.RegisterGaugeFunc(obs.MetricSLOSuppressionRatio,
			"Fraction of window decisions suppressed.",
			metrics.Labels{"window": w.Name},
			func() float64 { return snap().SuppressionRatio() })
		r.RegisterGaugeFunc(obs.MetricSLODegradedRatio,
			"Fraction of window decisions degraded fail-closed.",
			metrics.Labels{"window": w.Name},
			func() float64 { return snap().DegradedRatio() })
		for _, q := range []struct {
			name string
			q    float64
		}{{"p5", 0.05}, {"p50", 0.50}} {
			q := q
			r.RegisterGaugeFunc(obs.MetricSLOAchievedKQuantile,
				"Achieved-k quantile over the window's generalized decisions.",
				metrics.Labels{"window": w.Name, "quantile": q.name},
				func() float64 { return snap().KQuantile(q.q) })
		}
	}
	for i, o := range e.objectives {
		i, o := i, o
		for _, w := range e.windows {
			w := w
			r.RegisterGaugeFunc(obs.MetricSLOBurnRate,
				"Objective burn rate per window (observed ratio over budget).",
				metrics.Labels{"objective": o.Signal, "window": w.Name},
				func() float64 {
					s := e.snapshotWindow(w, e.maxT.Load())
					return o.ratio(s) / o.Budget
				})
		}
		r.RegisterGaugeFunc(obs.MetricSLOState,
			"Objective burn-rate state (0 ok, 1 warning, 2 page).",
			metrics.Labels{"objective": o.Signal},
			func() float64 {
				e.evalMu.Lock()
				defer e.evalMu.Unlock()
				return float64(e.states[i])
			})
	}
	r.RegisterCounterVec(obs.MetricSLOTransitions,
		"Burn-rate state transitions by objective and new state.",
		nil, e.transitions)
	// Canary families read through the engine's canary pointer at scrape
	// time, so the exposition surface does not depend on whether (or
	// when) a deployment wires a canary: unwired reads as zero (age -1).
	lastOr := func(f func(CanaryResult) float64, none float64) func() float64 {
		return func() float64 {
			if c := e.canary.Load(); c != nil {
				if res, ok := c.Last(); ok {
					return f(res)
				}
			}
			return none
		}
	}
	r.RegisterGaugeFunc(obs.MetricSLOCanaryLinkProb,
		"Mean probability the canary's LT-consistency attack assigns to the correct user.",
		nil, lastOr(func(r CanaryResult) float64 { return r.LinkProbability }, 0))
	r.RegisterGaugeFunc(obs.MetricSLOCanaryReident,
		"Fraction of attacked pseudonym series fully re-identified by the canary.",
		nil, lastOr(func(r CanaryResult) float64 { return r.ReidentifiedRatio() }, 0))
	r.RegisterGaugeFunc(obs.MetricSLOCanaryAnonSet,
		"Mean LT-consistent anonymity-set size over attacked series.",
		nil, lastOr(func(r CanaryResult) float64 { return r.AnonSetMean }, 0))
	r.RegisterCounterFunc(obs.MetricSLOCanaryProbes,
		"Completed canary probes.", nil, func() int64 {
			if c := e.canary.Load(); c != nil {
				return c.Probes()
			}
			return 0
		})
	r.RegisterCounterFunc(obs.MetricSLOCanarySkipped,
		"Canary probes skipped (admission pressure, rate limit, or empty ring).",
		nil, func() int64 {
			if c := e.canary.Load(); c != nil {
				p, rl, em := c.Skips()
				return p + rl + em
			}
			return 0
		})
	r.RegisterGaugeFunc(obs.MetricSLOCanaryAge,
		"Wall seconds since the last successful canary probe (-1 before the first).",
		nil, func() float64 {
			if c := e.canary.Load(); c != nil {
				return c.AgeSeconds()
			}
			return -1
		})
}
