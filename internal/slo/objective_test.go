package slo

import (
	"strings"
	"testing"
)

func TestParseObjectivesValid(t *testing.T) {
	cases := []struct {
		spec string
		want []Objective
	}{
		{"below_k<0.1%", []Objective{
			{Signal: SignalBelowK, Budget: 0.001, WarnBurn: 2, PageBurn: 10, MinDecisions: 10},
		}},
		{" below_k < 5% ; warn=3 ; page=20 ; min=50 ", []Objective{
			{Signal: SignalBelowK, Budget: 0.05, WarnBurn: 3, PageBurn: 20, MinDecisions: 50},
		}},
		{"below_k<0.1%,suppression<5%,degraded<1%;page=4;warn=4", []Objective{
			{Signal: SignalBelowK, Budget: 0.001, WarnBurn: 2, PageBurn: 10, MinDecisions: 10},
			{Signal: SignalSuppression, Budget: 0.05, WarnBurn: 2, PageBurn: 10, MinDecisions: 10},
			{Signal: SignalDegraded, Budget: 0.01, WarnBurn: 4, PageBurn: 4, MinDecisions: 10},
		}},
		{"below_k<0.1%,", []Objective{ // trailing comma tolerated
			{Signal: SignalBelowK, Budget: 0.001, WarnBurn: 2, PageBurn: 10, MinDecisions: 10},
		}},
	}
	for _, c := range cases {
		got, err := ParseObjectives(c.spec)
		if err != nil {
			t.Fatalf("ParseObjectives(%q): %v", c.spec, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseObjectives(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseObjectives(%q)[%d] = %+v, want %+v", c.spec, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseObjectivesInvalid(t *testing.T) {
	cases := []struct {
		spec, wantErr string
	}{
		{"", "empty"},
		{" , ", "empty"},
		{"below_k", "want signal<budget"},
		{"typo<1%", "unknown signal"},
		{"below_k<1", "must end in %"},
		{"below_k<x%", "bad budget"},
		{"below_k<0%", "budget must be in"},
		{"below_k<100%", "budget must be in"},
		{"below_k<-3%", "budget must be in"},
		{"below_k<1%;warn", "want key=value"},
		{"below_k<1%;warn=0.5", "must be in [1, 1e6]"},
		{"below_k<1%;page=nope", "bad page"},
		{"below_k<1%;min=-1", "min must be"},
		{"below_k<1%;min=x", "bad min"},
		{"below_k<1%;zap=1", "unknown option"},
		{"below_k<1%;warn=5;page=2", "page burn 2 below warn burn 5"},
		{"below_k<1%,below_k<2%", "duplicate objective"},
	}
	for _, c := range cases {
		_, err := ParseObjectives(c.spec)
		if err == nil {
			t.Fatalf("ParseObjectives(%q) accepted", c.spec)
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ParseObjectives(%q) err = %q, want substring %q", c.spec, err, c.wantErr)
		}
	}
}

func TestObjectiveSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{"below_k<0.1%", "suppression<5%;warn=3;page=12"} {
		parsed, err := ParseObjectives(spec)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseObjectives(parsed[0].Spec())
		if err != nil {
			t.Fatalf("re-parse %q: %v", parsed[0].Spec(), err)
		}
		// Spec() doesn't render min, so compare everything else.
		a, b := parsed[0], again[0]
		a.MinDecisions, b.MinDecisions = 0, 0
		if a != b {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", spec, parsed[0], parsed[0].Spec(), again[0])
		}
	}
}

func TestParseWindowsValid(t *testing.T) {
	got, err := ParseWindows("30s, 1m,10m , 1h")
	if err != nil {
		t.Fatal(err)
	}
	want := []WindowSpec{{"30s", 30}, {"1m", 60}, {"10m", 600}, {"1h", 3600}}
	if len(got) != len(want) {
		t.Fatalf("ParseWindows = %+v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ParseWindows[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestParseWindowsInvalid(t *testing.T) {
	cases := []struct {
		spec, wantErr string
	}{
		{"", "empty"},
		{"nope", "window"},
		{"500ms", "whole number of seconds"},
		{"-1m", "positive"},
		{"0s", "positive"},
		{"25h", "exceeds the 24h maximum"},
		{"10m,1m", "strictly increasing"},
		{"1m,1m", "strictly increasing"},
	}
	for _, c := range cases {
		_, err := ParseWindows(c.spec)
		if err == nil {
			t.Fatalf("ParseWindows(%q) accepted", c.spec)
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("ParseWindows(%q) err = %q, want substring %q", c.spec, err, c.wantErr)
		}
	}
}

func TestStateString(t *testing.T) {
	if StateOK.String() != "ok" || StateWarning.String() != "warning" || StatePage.String() != "page" {
		t.Fatal("state strings")
	}
	if State(9).String() != "state(9)" {
		t.Fatalf("out-of-range state = %q", State(9).String())
	}
}

func TestHorizonWindows(t *testing.T) {
	e := New(Options{Windows: []WindowSpec{{"1m", 60}}})
	s, m, l := e.horizonWindows()
	if s.Name != "1m" || m.Name != "1m" || l.Name != "1m" {
		t.Fatalf("single-window horizons = %v %v %v", s, m, l)
	}
	e = New(Options{})
	s, m, l = e.horizonWindows()
	if s.Name != "1m" || m.Name != "10m" || l.Name != "1h" {
		t.Fatalf("default horizons = %v %v %v", s, m, l)
	}
}
