package slo

import (
	"strings"
	"testing"
)

// FuzzParseObjectives pins the objective-spec parser's invariants: on
// accept, every objective is well-formed (known signal, budget in (0,1),
// 1 ≤ warn ≤ page, min ≥ 0, no duplicate signals) and its Spec()
// rendering re-parses to the same objective; on reject, the error names
// the package. CI runs the checked-in corpus
// (testdata/fuzz/FuzzParseObjectives) on every build.
func FuzzParseObjectives(f *testing.F) {
	for _, seed := range []string{
		"below_k<0.1%",
		"below_k<0.1%;warn=2;page=10;min=50",
		"below_k<0.1%,suppression<5%,degraded<1%",
		" below_k < 5% ; page = 20 ",
		"",
		",",
		"below_k",
		"typo<1%",
		"below_k<1",
		"below_k<0%",
		"below_k<100%",
		"below_k<1%;warn=0.5",
		"below_k<1%;warn=5;page=2",
		"below_k<1%,below_k<2%",
		"below_k<1e-4%",
		"below_k<1%;min=-1",
		"below_k<1%;;min=3",
		"suppression<99.999%",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		objs, err := ParseObjectives(spec)
		if err != nil {
			if !strings.Contains(err.Error(), "slo:") {
				t.Fatalf("error without package prefix: %v", err)
			}
			return
		}
		if len(objs) == 0 {
			t.Fatalf("accepted %q with zero objectives", spec)
		}
		seen := map[string]bool{}
		for _, o := range objs {
			switch o.Signal {
			case SignalBelowK, SignalSuppression, SignalDegraded:
			default:
				t.Fatalf("accepted unknown signal %q from %q", o.Signal, spec)
			}
			if seen[o.Signal] {
				t.Fatalf("accepted duplicate signal %q from %q", o.Signal, spec)
			}
			seen[o.Signal] = true
			if !(o.Budget > 0 && o.Budget < 1) {
				t.Fatalf("budget %g out of (0,1) from %q", o.Budget, spec)
			}
			if o.WarnBurn < 1 || o.PageBurn < o.WarnBurn {
				t.Fatalf("burns %g/%g malformed from %q", o.WarnBurn, o.PageBurn, spec)
			}
			if o.MinDecisions < 0 {
				t.Fatalf("min %d negative from %q", o.MinDecisions, spec)
			}
			// Spec() must round-trip through the parser.
			again, err := ParseObjectives(o.Spec())
			if err != nil {
				t.Fatalf("Spec() %q of %q does not re-parse: %v", o.Spec(), spec, err)
			}
			if len(again) != 1 || again[0].Signal != o.Signal ||
				again[0].WarnBurn != o.WarnBurn || again[0].PageBurn != o.PageBurn {
				t.Fatalf("Spec() round trip drifted: %+v -> %q -> %+v", o, o.Spec(), again)
			}
		}
	})
}

// FuzzParseWindows pins the window parser the same way: accepted window
// lists are positive whole seconds, strictly increasing, ≤ 24h, and
// usable to construct an engine without panicking.
func FuzzParseWindows(f *testing.F) {
	for _, seed := range []string{
		"1m,10m,1h", "30s", "", "nope", "500ms", "-1m", "25h", "10m,1m", "1m, 1m",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		ws, err := ParseWindows(spec)
		if err != nil {
			return
		}
		if len(ws) == 0 {
			t.Fatalf("accepted %q with zero windows", spec)
		}
		prev := int64(0)
		for _, w := range ws {
			if w.Seconds <= prev || w.Seconds > 86400 {
				t.Fatalf("window %+v malformed from %q", w, spec)
			}
			prev = w.Seconds
		}
		// Accepted windows must construct a working engine.
		e := New(Options{Windows: ws, MinEvalGap: -1})
		e.SetEnabled(true)
		e.Observe(Decision{T: 100, RequestedK: 5, AchievedK: 5, Generalized: true})
		if e.DecisionsTotal() != 1 {
			t.Fatalf("engine over %q dropped the decision", spec)
		}
	})
}
