package slo

import (
	"strings"
	"sync"
	"testing"

	"histanon/internal/metrics"
	"histanon/internal/obs"
)

// testEngine returns an engine with short windows, an aggressive test
// objective (below_k < 10%, warn 2x, page 10x, min 5 decisions) and the
// wall throttle disabled, so evaluation runs deterministically on every
// bucket edge.
func testEngine() *Engine {
	e := New(Options{
		Windows: []WindowSpec{{"5s", 5}, {"15s", 15}, {"60s", 60}},
		Objectives: []Objective{{
			Signal: SignalBelowK, Budget: 0.10,
			WarnBurn: 2, PageBurn: 10, MinDecisions: 5,
		}},
		MinEvalGap: -1,
	})
	e.SetEnabled(true)
	return e
}

func obsDecision(e *Engine, t int64, requested, achieved int) {
	e.Observe(Decision{T: t, RequestedK: requested, AchievedK: achieved, Generalized: achieved > 0})
}

func TestObserveDisabledIsNoop(t *testing.T) {
	e := New(Options{})
	e.Observe(Decision{T: 10, RequestedK: 5, AchievedK: 2})
	if e.DecisionsTotal() != 0 || e.Now() != -1 {
		t.Fatalf("disabled engine recorded: decisions=%d now=%d", e.DecisionsTotal(), e.Now())
	}
}

func TestWindowAggregation(t *testing.T) {
	e := testEngine()
	// 10 decisions at t=100..109: 3 below-k (achieved 3 < requested 5),
	// 7 at k (achieved 5), plus one suppressed and one degraded marker.
	for i := int64(0); i < 10; i++ {
		achieved := 5
		if i < 3 {
			achieved = 3
		}
		obsDecision(e, 100+i, 5, achieved)
	}
	e.Observe(Decision{T: 109, Suppressed: true})
	e.Observe(Decision{T: 109, Degraded: true, Suppressed: true})

	now := e.Now()
	if now != 109 {
		t.Fatalf("Now() = %d, want 109", now)
	}
	s, ok := e.Snapshot("15s", now)
	if !ok {
		t.Fatalf("window 15s not found")
	}
	if s.Decisions != 12 || s.BelowK != 3 || s.Suppressed != 2 || s.Degraded != 1 {
		t.Fatalf("15s window = %+v", s)
	}
	if got := s.BelowKRatio(); got != 3.0/12 {
		t.Fatalf("BelowKRatio = %g, want %g", got, 3.0/12)
	}
	// The 5s window only reaches back to t=105: 5 at-k decisions plus
	// the two suppressed markers.
	s5, _ := e.Snapshot("5s", now)
	if s5.Decisions != 7 || s5.BelowK != 0 {
		t.Fatalf("5s window = %+v", s5)
	}
	// Quantiles: p50 over k-values {3,3,3,5,5,5,5,5,5,5} lands in the
	// k=5 bucket (interpolated within (4,5]).
	if p50 := s.KQuantile(0.50); p50 <= 4 || p50 > 5 {
		t.Fatalf("KQuantile(0.5) = %g, want in (4,5]", p50)
	}
}

func TestKSlotMatchesAchievedKBuckets(t *testing.T) {
	// The engine's slot mapping must agree with a live histogram over
	// obs.AchievedKBuckets for every k, including overflow.
	for k := 1; k <= 30; k++ {
		h := metrics.NewHistogram(obs.AchievedKBuckets())
		h.Observe(float64(k))
		counts := h.BucketCounts()
		want := -1
		for i, c := range counts {
			if c == 1 {
				want = i
			}
		}
		if got := kSlot(k); got != want {
			t.Fatalf("kSlot(%d) = %d, histogram bucket = %d", k, got, want)
		}
	}
}

func TestLateDecisionsDrop(t *testing.T) {
	e := testEngine()
	obsDecision(e, 10000, 5, 5)
	// A full ring length behind: the late epoch maps to the same ring
	// slot the newer epoch already claimed, so it must drop, not misfile.
	late := int64(10000 - len(e.buckets))
	obsDecision(e, late, 5, 5)
	if e.DroppedLate() != 1 {
		t.Fatalf("DroppedLate = %d, want 1", e.DroppedLate())
	}
	s, _ := e.Snapshot("60s", e.Now())
	if s.Decisions != 1 {
		t.Fatalf("60s window = %+v, want 1 decision", s)
	}
}

func TestStaleBucketsExcluded(t *testing.T) {
	e := testEngine()
	obsDecision(e, 100, 5, 3) // below-k
	// Advance far past every window: the old bucket's epoch no longer
	// matches any queried epoch, so it contributes nothing.
	obsDecision(e, 100+3600, 5, 5)
	s, _ := e.Snapshot("60s", e.Now())
	if s.Decisions != 1 || s.BelowK != 0 {
		t.Fatalf("after advance window = %+v", s)
	}
	// Lifetime totals keep everything.
	if e.DecisionsTotal() != 2 || e.BelowKTotal() != 1 {
		t.Fatalf("totals = %d/%d", e.DecisionsTotal(), e.BelowKTotal())
	}
}

func TestIntervalSnapshotBounds(t *testing.T) {
	e := testEngine()
	for i := int64(0); i < 10; i++ {
		obsDecision(e, 100+i, 5, 5)
	}
	if _, ok := e.IntervalSnapshot(100, 100); ok {
		t.Fatal("empty interval accepted")
	}
	s, ok := e.IntervalSnapshot(100, 105)
	if !ok || s.Decisions != 5 {
		t.Fatalf("interval [100,105) = %+v ok=%v, want 5 decisions", s, ok)
	}
}

func TestBurnRateStateMachine(t *testing.T) {
	e := testEngine()
	var events []obs.Event
	e.SetAudit(func(ev obs.Event) { events = append(events, ev) })

	// Phase 0: healthy traffic fills every window at 0% below-k.
	for i := int64(0); i < 60; i++ {
		obsDecision(e, 1000+i, 5, 5)
	}
	res := e.Evaluate(e.Now())
	if res.Objectives[0].State != StateOK {
		t.Fatalf("healthy state = %v", res.Objectives[0].State)
	}

	// Phase 1: a mild burn — 25% below-k (burn 2.5: above warn, below
	// page) sustained long enough to fill mid and long windows.
	for i := int64(0); i < 60; i++ {
		achieved := 5
		if i%4 == 0 {
			achieved = 3
		}
		obsDecision(e, 1060+i, 5, achieved)
	}
	res = e.Evaluate(e.Now())
	if res.Objectives[0].State != StateWarning {
		t.Fatalf("after mild burn state = %v, want warning", res.Objectives[0].State)
	}

	// Phase 2: a severe burn — 100% below-k (burn 10) in short and mid.
	for i := int64(0); i < 20; i++ {
		obsDecision(e, 1120+i, 5, 2)
	}
	res = e.Evaluate(e.Now())
	if res.Objectives[0].State != StatePage {
		t.Fatalf("after severe burn state = %v, want page", res.Objectives[0].State)
	}

	// Recovery: healthy traffic long enough to flush every window. The
	// page de-escalates through warning (short/mid clear before long).
	for i := int64(0); i < 120; i++ {
		obsDecision(e, 1140+i, 5, 5)
	}
	res = e.Evaluate(e.Now())
	if res.Objectives[0].State != StateOK {
		t.Fatalf("after recovery state = %v, want ok", res.Objectives[0].State)
	}

	// The transition sequence must be audited in order with from-states.
	var seq []string
	for _, ev := range events {
		if ev.Kind != obs.KindSLO {
			t.Fatalf("unexpected audit kind %q", ev.Kind)
		}
		if ev.Objective != SignalBelowK {
			t.Fatalf("audit objective = %q", ev.Objective)
		}
		seq = append(seq, ev.SLOFrom+">"+ev.SLOState)
	}
	want := []string{"ok>warning", "warning>page", "page>warning", "warning>ok"}
	if strings.Join(seq, " ") != strings.Join(want, " ") {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
	// The page transition carries the short window's burn at transition
	// time, at or above the page threshold.
	if events[1].BurnRate < 10 {
		t.Fatalf("page transition burn rate = %g, want >= 10", events[1].BurnRate)
	}
	// Transition counters match the audited sequence.
	tr := e.Transitions()
	if tr.Get(SignalBelowK, "warning") != 2 || tr.Get(SignalBelowK, "page") != 1 || tr.Get(SignalBelowK, "ok") != 1 {
		t.Fatalf("transition counters: warning=%d page=%d ok=%d",
			tr.Get(SignalBelowK, "warning"), tr.Get(SignalBelowK, "page"), tr.Get(SignalBelowK, "ok"))
	}
}

func TestMinDecisionsGuard(t *testing.T) {
	e := testEngine()
	// 3 decisions, all below-k: a 100% ratio but under the 5-decision
	// evidence floor — must not alert.
	for i := int64(0); i < 3; i++ {
		obsDecision(e, 100+i, 5, 2)
	}
	res := e.Evaluate(e.Now())
	if res.Objectives[0].State != StateOK {
		t.Fatalf("state = %v with 3 decisions, want ok", res.Objectives[0].State)
	}
}

func TestRegisterMetricsExposesFamilies(t *testing.T) {
	e := testEngine()
	r := metrics.NewRegistry()
	e.RegisterMetrics(r)
	obsDecision(e, 100, 5, 2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range []string{
		obs.MetricSLODecisions, obs.MetricSLOBelowK, obs.MetricSLOBelowKRatio,
		obs.MetricSLOAchievedKQuantile, obs.MetricSLOBurnRate, obs.MetricSLOState,
		obs.MetricSLOCanaryLinkProb, obs.MetricSLOCanaryAge,
	} {
		if !strings.Contains(out, name) {
			t.Fatalf("exposition lacks %s", name)
		}
	}
	if !strings.Contains(out, obs.MetricSLODecisions+" 1\n") {
		t.Fatalf("decisions counter not 1 in:\n%s", out)
	}
	// No canary wired: age reads -1.
	if !strings.Contains(out, obs.MetricSLOCanaryAge+" -1\n") {
		t.Fatalf("unwired canary age not -1")
	}
}

func TestObserveConcurrent(t *testing.T) {
	e := testEngine()
	var wg sync.WaitGroup
	const workers, per = 8, 2000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// All within one 60s span so nothing is evicted or late.
				t := int64(100000 + (w*per+i)%60)
				obsDecision(e, t, 5, 3+(i%3))
			}
		}(w)
	}
	wg.Wait()
	if e.DecisionsTotal() != workers*per {
		t.Fatalf("DecisionsTotal = %d, want %d", e.DecisionsTotal(), workers*per)
	}
	s, _ := e.Snapshot("60s", e.Now())
	if s.Decisions != workers*per {
		t.Fatalf("60s window holds %d, want %d", s.Decisions, workers*per)
	}
}
