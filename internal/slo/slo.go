// Package slo is the trusted server's privacy-SLO engine: it turns the
// per-request privacy decisions of the TS pipeline into continuous,
// windowed, alertable signals, so an operator can answer "is privacy
// degrading right now, and how fast?" — the standing-guarantee view the
// paper's §6.1 loop implies but per-request observability (internal/obs)
// cannot provide.
//
// Three parts:
//
//   - Sliding windows (this file) — a single ring of per-second buckets
//     holding achieved-k bucket counts, below-k / suppression /
//     degradation tallies, keyed on the logical decision timestamp the
//     whole system runs on. Configured windows (default 1m/10m/1h) are
//     read as sums over the ring, so one hot-path write feeds every
//     window. The feed is atomics-only and costs one atomic load when
//     the engine is off — the same discipline as internal/obs.
//
//   - Objectives and burn rates (objective.go) — SRE-style multi-window
//     burn evaluation of parsed objectives such as "below_k<0.1%", with
//     ok → warning → page state transitions emitted as KindSLO audit
//     records and histanon_slo_* metrics.
//
//   - Re-identification canary (canary.go) — a rate-limited, read-only
//     background probe replaying recently forwarded generalized
//     requests through the LT-consistency attack against the live
//     store, so the attack the paper defends against is itself a
//     monitored signal.
//
// OBSERVABILITY.md documents every metric family, /v1/slo field and
// KindSLO audit field, plus the burn-rate runbook.
package slo

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"histanon/internal/geo"
	"histanon/internal/metrics"
	"histanon/internal/obs"
)

// kSlots is the number of achieved-k accumulation slots per bucket: one
// per k in [1,20] plus the shared overflow slot — exactly the bucket
// layout of obs.AchievedKBuckets, so window counts replay bit-exactly
// against the audit log (see AchievedKHistogram).
const kSlots = 21

// Decision is the per-request summary the trusted server feeds the
// engine from its decision path. T is the request's logical timestamp
// (the clock the audit log and the whole system run on).
type Decision struct {
	T          int64
	RequestedK int
	// AchievedK is witnesses+1 for generalized requests, 0 otherwise —
	// the same value the audit record carries.
	AchievedK   int
	Generalized bool
	Forwarded   bool
	Suppressed  bool
	Degraded    bool
	// User is the issuing user's internal id — the canary's ground truth
	// for whether the attack re-identified the right user.
	User int64
	// Pseudonym and Box describe the forwarded generalized request as
	// the service provider sees it; the canary replays them through the
	// LT-consistency attack. Zero-valued when not forwarded.
	Pseudonym string
	Box       geo.STBox
}

// BelowK reports whether the decision released (or tried to release) a
// generalized context weaker than the policy asked for: Algorithm 1 ran
// and the achieved anonymity fell short of the requested k.
func (d Decision) BelowK() bool {
	return d.AchievedK > 0 && d.RequestedK > 0 && d.AchievedK < d.RequestedK
}

// bucket is one ring slot: the privacy tallies of one bucketSec-wide
// interval of logical time. epoch is the absolute bucket number
// (t / bucketSec), or resettingEpoch while a writer zeroes the slot for
// reuse.
type bucket struct {
	epoch      atomic.Int64
	decisions  atomic.Int64
	belowK     atomic.Int64
	suppressed atomic.Int64
	degraded   atomic.Int64
	k          [kSlots]atomic.Int64
}

const resettingEpoch = int64(-1)

func (b *bucket) reset() {
	b.decisions.Store(0)
	b.belowK.Store(0)
	b.suppressed.Store(0)
	b.degraded.Store(0)
	for i := range b.k {
		b.k[i].Store(0)
	}
}

// WindowSpec is one sliding window read over the ring.
type WindowSpec struct {
	// Name labels the window in metrics and /v1/slo ("1m", "10m", …).
	Name string
	// Seconds is the window span; it must be a positive multiple of the
	// engine's bucket size.
	Seconds int64
}

// Options configures an engine. The zero value gets the defaults:
// 1s buckets, 1m/10m/1h windows, the below_k<0.1% objective.
type Options struct {
	// BucketSeconds is the ring granularity (default 1).
	BucketSeconds int64
	// Windows are the sliding windows, shortest first (default
	// 1m/10m/1h). Burn-rate evaluation uses the shortest, middle and
	// longest windows as its short/mid/long horizons.
	Windows []WindowSpec
	// Objectives are the privacy objectives to evaluate (default
	// below_k<0.1%).
	Objectives []Objective
	// MinEvalGap throttles burn-rate evaluation: at most one evaluation
	// per this much wall time, no matter how fast logical time advances
	// (default 250ms; negative disables the throttle — tests use that
	// for determinism).
	MinEvalGap time.Duration
}

// DefaultWindows returns the 1m/10m/1h window set.
func DefaultWindows() []WindowSpec {
	return []WindowSpec{{"1m", 60}, {"10m", 600}, {"1h", 3600}}
}

// Engine is the windowed privacy-SLO engine. Construct with New; the
// zero value is not usable. All methods are safe for concurrent use.
// The engine starts disabled: Observe is one atomic load until
// SetEnabled(true).
type Engine struct {
	enabled   atomic.Bool
	bucketSec int64
	buckets   []bucket
	windows   []WindowSpec

	// maxT is the latest decision timestamp observed (the engine's
	// logical "now"); -1 before any decision.
	maxT atomic.Int64

	// Lifetime totals backing the histanon_slo_*_total counters.
	decisionsTotal atomic.Int64
	belowKTotal    atomic.Int64
	droppedLate    atomic.Int64

	// Burn-rate evaluation: triggered when logical time enters a new
	// bucket (at most once per bucket), wall-throttled by minEvalGap.
	evalEpoch    atomic.Int64
	lastEvalWall atomic.Int64
	minEvalGap   time.Duration

	evalMu     sync.Mutex
	objectives []Objective
	states     []State
	since      []int64
	lastEval   atomic.Pointer[EvalResult]

	transitions *metrics.CounterVec // labels: objective, to

	audit  atomic.Pointer[func(obs.Event)]
	canary atomic.Pointer[Canary]
}

// New returns an engine over the given options (zero fields get
// defaults). It panics when a window span is not a positive multiple of
// the bucket size — a wiring-time error, like metrics registration.
func New(opts Options) *Engine {
	if opts.BucketSeconds <= 0 {
		opts.BucketSeconds = 1
	}
	if len(opts.Windows) == 0 {
		opts.Windows = DefaultWindows()
	}
	if len(opts.Objectives) == 0 {
		opts.Objectives = DefaultObjectives()
	}
	if opts.MinEvalGap == 0 {
		opts.MinEvalGap = 250 * time.Millisecond
	}
	longest := int64(0)
	for _, w := range opts.Windows {
		if w.Seconds <= 0 || w.Seconds%opts.BucketSeconds != 0 {
			panic("slo: window span must be a positive multiple of the bucket size")
		}
		if w.Seconds > longest {
			longest = w.Seconds
		}
	}
	e := &Engine{
		bucketSec:   opts.BucketSeconds,
		buckets:     make([]bucket, longest/opts.BucketSeconds+2),
		windows:     append([]WindowSpec(nil), opts.Windows...),
		objectives:  append([]Objective(nil), opts.Objectives...),
		states:      make([]State, len(opts.Objectives)),
		since:       make([]int64, len(opts.Objectives)),
		minEvalGap:  opts.MinEvalGap,
		transitions: metrics.NewCounterVec("objective", "to"),
	}
	for i := range e.states {
		e.states[i] = StateOK
	}
	e.maxT.Store(-1)
	e.evalEpoch.Store(-1)
	return e
}

// SetEnabled turns the engine on or off. Off, Observe costs one atomic
// load. Safe to toggle while requests are in flight.
func (e *Engine) SetEnabled(on bool) { e.enabled.Store(on) }

// Enabled reports whether the engine is recording.
func (e *Engine) Enabled() bool { return e.enabled.Load() }

// SetAudit installs the sink KindSLO state-transition records are
// written to (the trusted server wires its audit log here).
func (e *Engine) SetAudit(fn func(obs.Event)) {
	if fn == nil {
		e.audit.Store(nil)
		return
	}
	e.audit.Store(&fn)
}

// AttachCanary installs (or, with nil, removes) the re-identification
// canary fed from the decision path.
func (e *Engine) AttachCanary(c *Canary) { e.canary.Store(c) }

// CanaryAttached returns the attached canary, or nil.
func (e *Engine) CanaryAttached() *Canary { return e.canary.Load() }

// Windows returns the configured window specs.
func (e *Engine) Windows() []WindowSpec { return e.windows }

// Objectives returns the configured objectives.
func (e *Engine) Objectives() []Objective { return e.objectives }

// DecisionsTotal and BelowKTotal are the lifetime counters behind the
// histanon_slo_decisions_total / histanon_slo_below_k_total families.
func (e *Engine) DecisionsTotal() int64 { return e.decisionsTotal.Load() }

// BelowKTotal returns the lifetime below-k decision count.
func (e *Engine) BelowKTotal() int64 { return e.belowKTotal.Load() }

// DroppedLate counts decisions whose timestamp was too old for the ring
// (more than the longest window behind the newest decision).
func (e *Engine) DroppedLate() int64 { return e.droppedLate.Load() }

// Observe feeds one decision into every window. When the engine is off
// this is a single atomic load; when on, a handful of uncontended
// atomic adds into the ring bucket the decision's timestamp selects.
func (e *Engine) Observe(d Decision) {
	if !e.enabled.Load() {
		return
	}
	if d.T < 0 {
		return
	}
	e.advanceMaxT(d.T)
	e.decisionsTotal.Add(1)
	below := d.BelowK()
	if below {
		e.belowKTotal.Add(1)
	}
	if b := e.bucketFor(d.T); b != nil {
		b.decisions.Add(1)
		if below {
			b.belowK.Add(1)
		}
		if d.Suppressed {
			b.suppressed.Add(1)
		}
		if d.Degraded {
			b.degraded.Add(1)
		}
		if d.AchievedK > 0 {
			b.k[kSlot(d.AchievedK)].Add(1)
		}
	} else {
		e.droppedLate.Add(1)
	}
	if d.Forwarded && d.Generalized && d.Pseudonym != "" {
		if c := e.canary.Load(); c != nil {
			c.capture(d)
		}
	}
	e.maybeEvaluate(d.T)
}

// kSlot maps an achieved-k value to its accumulation slot: k−1 for k in
// [1,20], the overflow slot above — the index obs.AchievedKBuckets
// assigns the same value.
func kSlot(k int) int {
	if k >= kSlots {
		return kSlots - 1
	}
	return k - 1
}

func (e *Engine) advanceMaxT(t int64) {
	for {
		cur := e.maxT.Load()
		if t <= cur || e.maxT.CompareAndSwap(cur, t) {
			return
		}
	}
}

// bucketFor returns the ring slot for logical time t, rotating the slot
// to t's epoch if it still holds an older interval. It returns nil for
// timestamps older than the ring's reach (late arrivals are dropped
// rather than misfiled). Rotation is a short CAS critical section; at
// most one writer resets a slot while others spin.
func (e *Engine) bucketFor(t int64) *bucket {
	epoch := t / e.bucketSec
	b := &e.buckets[int(epoch%int64(len(e.buckets)))]
	for {
		cur := b.epoch.Load()
		switch {
		case cur == epoch:
			return b
		case cur == resettingEpoch:
			runtime.Gosched()
		case cur > epoch:
			return nil
		default:
			if b.epoch.CompareAndSwap(cur, resettingEpoch) {
				b.reset()
				b.epoch.Store(epoch)
				return b
			}
		}
	}
}

// WindowSnapshot is the aggregate of one window at one instant.
type WindowSnapshot struct {
	Name string
	// Seconds is the window span; Start/End is the half-open logical
	// interval the snapshot covers (End = now+1 so the current second's
	// partial bucket is included).
	Seconds    int64
	Start, End int64
	Decisions  int64
	BelowK     int64
	Suppressed int64
	Degraded   int64
	// K holds the achieved-k accumulation slots (see AchievedKHistogram).
	K [kSlots]int64
}

// BelowKRatio returns belowK/decisions, 0 with no decisions.
func (s WindowSnapshot) BelowKRatio() float64 { return ratio(s.BelowK, s.Decisions) }

// SuppressionRatio returns suppressed/decisions, 0 with no decisions.
func (s WindowSnapshot) SuppressionRatio() float64 { return ratio(s.Suppressed, s.Decisions) }

// DegradedRatio returns degraded/decisions, 0 with no decisions.
func (s WindowSnapshot) DegradedRatio() float64 { return ratio(s.Degraded, s.Decisions) }

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// KQuantile estimates the q-quantile of the achieved-k distribution in
// the window, with the same linear interpolation as
// metrics.Histogram.Quantile over obs.AchievedKBuckets. It returns 0
// when the window saw no generalized decisions.
func (s WindowSnapshot) KQuantile(q float64) float64 {
	h := metrics.NewHistogram(obs.AchievedKBuckets())
	if err := h.AddBucketCounts(s.K[:], 0); err != nil {
		return 0
	}
	v := h.Quantile(q)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// AchievedKHistogram converts the snapshot's k counts into a histogram
// with the audit log's replay buckets (obs.AchievedKBuckets), so window
// aggregates and obs.ReplayAchievedK compare bucket-for-bucket.
func (s WindowSnapshot) AchievedKHistogram() *metrics.Histogram {
	h := metrics.NewHistogram(obs.AchievedKBuckets())
	// The bounds are obs.AchievedKBuckets: kSlots counts always fit.
	_ = h.AddBucketCounts(s.K[:], 0)
	return h
}

// Now returns the engine's logical clock: the latest decision timestamp
// observed, or -1 before any decision.
func (e *Engine) Now() int64 { return e.maxT.Load() }

// Snapshot aggregates one window as of logical time now (pass Now()).
// ok is false for unknown window names.
func (e *Engine) Snapshot(name string, now int64) (WindowSnapshot, bool) {
	for _, w := range e.windows {
		if w.Name == name {
			return e.snapshotWindow(w, now), true
		}
	}
	return WindowSnapshot{}, false
}

// Snapshots aggregates every configured window as of logical time now.
func (e *Engine) Snapshots(now int64) []WindowSnapshot {
	out := make([]WindowSnapshot, len(e.windows))
	for i, w := range e.windows {
		out[i] = e.snapshotWindow(w, now)
	}
	return out
}

func (e *Engine) snapshotWindow(w WindowSpec, now int64) WindowSnapshot {
	s := WindowSnapshot{Name: w.Name, Seconds: w.Seconds}
	if now < 0 {
		return s
	}
	endEpoch := now / e.bucketSec
	startEpoch := endEpoch - w.Seconds/e.bucketSec + 1
	if startEpoch < 0 {
		startEpoch = 0
	}
	s.Start = startEpoch * e.bucketSec
	s.End = now + 1
	e.sumRange(&s, startEpoch, endEpoch)
	return s
}

// IntervalSnapshot sums the ring buckets fully covering the half-open
// logical interval [start, end). Both bounds must be multiples of the
// bucket size; ok is false otherwise. Buckets already evicted from the
// ring (overwritten by newer epochs) contribute nothing — callers
// wanting bit-exact agreement with an audit replay must query within
// the longest window's reach.
func (e *Engine) IntervalSnapshot(start, end int64) (WindowSnapshot, bool) {
	if start < 0 || end <= start || start%e.bucketSec != 0 || end%e.bucketSec != 0 {
		return WindowSnapshot{}, false
	}
	s := WindowSnapshot{Name: "interval", Seconds: end - start, Start: start, End: end}
	e.sumRange(&s, start/e.bucketSec, end/e.bucketSec-1)
	return s, true
}

// sumRange adds every resident bucket with epoch in [startEpoch,
// endEpoch] into s.
func (e *Engine) sumRange(s *WindowSnapshot, startEpoch, endEpoch int64) {
	n := int64(len(e.buckets))
	span := endEpoch - startEpoch + 1
	if span > n {
		startEpoch = endEpoch - n + 1
	}
	for epoch := startEpoch; epoch <= endEpoch; epoch++ {
		b := &e.buckets[int(epoch%n)]
		if b.epoch.Load() != epoch {
			continue
		}
		d := b.decisions.Load()
		below := b.belowK.Load()
		sup := b.suppressed.Load()
		deg := b.degraded.Load()
		var ks [kSlots]int64
		for i := range ks {
			ks[i] = b.k[i].Load()
		}
		// A rotation may have raced the reads; only fold the bucket in
		// if it still covers the epoch (counts are monotone within an
		// epoch, so a stable epoch brackets a consistent-enough sum).
		if b.epoch.Load() != epoch {
			continue
		}
		s.Decisions += d
		s.BelowK += below
		s.Suppressed += sup
		s.Degraded += deg
		for i := range ks {
			s.K[i] += ks[i]
		}
	}
}

// maybeEvaluate runs the burn-rate evaluation when logical time has
// entered a new bucket since the last evaluation, throttled to at most
// one evaluation per minEvalGap of wall time (logical time can advance
// thousands of buckets per wall second under replay or benchmark
// workloads).
func (e *Engine) maybeEvaluate(t int64) {
	epoch := t / e.bucketSec
	last := e.evalEpoch.Load()
	if epoch <= last {
		return
	}
	if e.minEvalGap > 0 {
		now := time.Now().UnixNano()
		lastWall := e.lastEvalWall.Load()
		if now-lastWall < int64(e.minEvalGap) {
			return
		}
		if !e.lastEvalWall.CompareAndSwap(lastWall, now) {
			return
		}
	}
	if !e.evalEpoch.CompareAndSwap(last, epoch) {
		return
	}
	e.Evaluate(e.maxT.Load())
}
