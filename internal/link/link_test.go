package link

import (
	"math/rand"
	"testing"
	"testing/quick"

	"histanon/internal/geo"
	"histanon/internal/wire"
)

func req(id int64, pseudo string, x, y float64, t int64) *wire.Request {
	return &wire.Request{
		ID:        wire.MsgID(id),
		Pseudonym: wire.Pseudonym(pseudo),
		Context: geo.STBox{
			Area: geo.RectAround(geo.Point{X: x, Y: y}),
			Time: geo.IntervalAround(t),
		},
	}
}

func TestPseudonymLinker(t *testing.T) {
	var p Pseudonym
	a := req(1, "alpha", 0, 0, 0)
	b := req(2, "alpha", 999, 999, 999)
	c := req(3, "beta", 0, 0, 0)
	if p.Likelihood(a, b) != 1 {
		t.Fatal("same pseudonym must link with likelihood 1")
	}
	if p.Likelihood(a, c) != 0 {
		t.Fatal("different pseudonyms carry no pseudonym-based evidence")
	}
	if p.Likelihood(a, a) != 1 {
		t.Fatal("reflexivity")
	}
}

func TestTrackingReachable(t *testing.T) {
	tr := Tracking{MaxSpeed: 10, HalfLife: 1e9} // effectively no decay
	a := req(1, "p1", 0, 0, 0)
	b := req(2, "p2", 50, 0, 10) // needs 5 m/s, well within 10
	if got := tr.Likelihood(a, b); got < 0.99 {
		t.Fatalf("reachable continuation: likelihood=%g", got)
	}
	c := req(3, "p3", 500, 0, 10) // needs 50 m/s
	if got := tr.Likelihood(a, c); got != 0 {
		t.Fatalf("unreachable: likelihood=%g", got)
	}
	d := req(4, "p4", 150, 0, 10) // needs 15 m/s: between v and 2v
	got := tr.Likelihood(a, d)
	if got <= 0 || got >= 1 {
		t.Fatalf("marginal reachability must be in (0,1): %g", got)
	}
}

func TestTrackingDecay(t *testing.T) {
	tr := Tracking{MaxSpeed: 100, HalfLife: 100}
	a := req(1, "p1", 0, 0, 0)
	near := req(2, "p2", 1, 0, 100) // one half-life later
	got := tr.Likelihood(a, near)
	if got < 0.45 || got > 0.55 {
		t.Fatalf("one half-life: likelihood=%g want ~0.5", got)
	}
	far := req(3, "p3", 1, 0, 1000) // ten half-lives
	if got := tr.Likelihood(a, far); got > 0.01 {
		t.Fatalf("ten half-lives: likelihood=%g", got)
	}
}

func TestTrackingSameInstantDisjoint(t *testing.T) {
	tr := Tracking{MaxSpeed: 10, HalfLife: 100}
	a := req(1, "p1", 0, 0, 50)
	b := req(2, "p2", 100, 0, 50) // same instant, 100 m apart
	if got := tr.Likelihood(a, b); got != 0 {
		t.Fatalf("teleportation must not link: %g", got)
	}
	c := req(3, "p3", 0, 0, 50) // same instant, same place
	if got := tr.Likelihood(a, c); got != 1 {
		t.Fatalf("same place same time: %g", got)
	}
}

func TestTrackingOverlappingBoxes(t *testing.T) {
	tr := Tracking{MaxSpeed: 10, HalfLife: 1e9}
	a := &wire.Request{Pseudonym: "p1", Context: geo.STBox{
		Area: geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100},
		Time: geo.Interval{Start: 0, End: 60},
	}}
	b := &wire.Request{Pseudonym: "p2", Context: geo.STBox{
		Area: geo.Rect{MinX: 50, MinY: 50, MaxX: 150, MaxY: 150},
		Time: geo.Interval{Start: 30, End: 90},
	}}
	if got := tr.Likelihood(a, b); got != 1 {
		t.Fatalf("overlapping generalized contexts: %g", got)
	}
}

func TestTrackingSymmetryProperty(t *testing.T) {
	tr := Tracking{MaxSpeed: 12, HalfLife: 300}
	f := func(x1, y1, x2, y2 int16, t1, t2 int32, w1, w2 uint8) bool {
		a := &wire.Request{Pseudonym: "p1", Context: geo.STBox{
			Area: geo.RectAround(geo.Point{X: float64(x1), Y: float64(y1)}).Expand(float64(w1)),
			Time: geo.IntervalAround(int64(t1)),
		}}
		b := &wire.Request{Pseudonym: "p2", Context: geo.STBox{
			Area: geo.RectAround(geo.Point{X: float64(x2), Y: float64(y2)}).Expand(float64(w2)),
			Time: geo.IntervalAround(int64(t2)),
		}}
		la, lb := tr.Likelihood(a, b), tr.Likelihood(b, a)
		return la == lb && la >= 0 && la <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCombinator(t *testing.T) {
	f := Max{Pseudonym{}, Tracking{MaxSpeed: 10, HalfLife: 100}}
	// Same pseudonym, physically implausible: pseudonym wins.
	a := req(1, "p", 0, 0, 0)
	b := req(2, "p", 1e6, 1e6, 1)
	if got := f.Likelihood(a, b); got != 1 {
		t.Fatalf("Max must take the pseudonym link: %g", got)
	}
	// Different pseudonyms, trackable: tracking wins.
	c := req(3, "q", 5, 0, 10)
	if got := f.Likelihood(a, c); got < 0.9 {
		t.Fatalf("Max must take the tracking link: %g", got)
	}
}

func TestComponents(t *testing.T) {
	// Chain a-b-c linked pairwise plus isolated d.
	a := req(1, "p1", 0, 0, 0)
	b := req(2, "p2", 50, 0, 10)
	c := req(3, "p3", 100, 0, 20)
	d := req(4, "p4", 9999, 9999, 25)
	f := Tracking{MaxSpeed: 10, HalfLife: 1e9}
	comps := Components([]*wire.Request{a, b, c, d}, f, 0.9)
	if len(comps) != 2 {
		t.Fatalf("got %d components", len(comps))
	}
	var big, small []*wire.Request
	for _, comp := range comps {
		if len(comp) == 3 {
			big = comp
		} else {
			small = comp
		}
	}
	if len(big) != 3 || len(small) != 1 || small[0] != d {
		t.Fatalf("components wrong: %v / %v", big, small)
	}
}

func TestIsLinkConnected(t *testing.T) {
	a := req(1, "p1", 0, 0, 0)
	b := req(2, "p2", 50, 0, 10)
	c := req(3, "p3", 100, 0, 20)
	f := Tracking{MaxSpeed: 10, HalfLife: 1e9}
	// a and c are not directly linkable (100m in 20s = 5 m/s is fine
	// actually; make c farther) — use a sharper chain.
	far := req(4, "p4", 400, 0, 30)
	if !IsLinkConnected([]*wire.Request{a, b, c}, f, 0.9) {
		t.Fatal("chain must be link-connected")
	}
	if IsLinkConnected([]*wire.Request{a, far}, f, 0.9) {
		t.Fatal("a and far require 13 m/s; not linkable at 0.9")
	}
	if !IsLinkConnected(nil, f, 0.9) || !IsLinkConnected([]*wire.Request{a}, f, 0.9) {
		t.Fatal("empty and singleton sets are trivially connected")
	}
}

func TestCorrectLinkProperty(t *testing.T) {
	// The paper's correctness remark: with the pseudonym linker and one
	// pseudonym per user, a set is link-connected at theta=1 iff all
	// requests share the user.
	var f Pseudonym
	same := []*wire.Request{req(1, "u", 0, 0, 0), req(2, "u", 5, 5, 5), req(3, "u", 9, 9, 9)}
	if !IsLinkConnected(same, f, 1) {
		t.Fatal("same-user set must be link-connected at 1")
	}
	mixed := append(same, req(4, "v", 0, 0, 0))
	if IsLinkConnected(mixed, f, 1) {
		t.Fatal("mixed-user set must not be link-connected at 1")
	}
}

func TestMaxPairLikelihood(t *testing.T) {
	f := Tracking{MaxSpeed: 10, HalfLife: 1e9}
	before := []*wire.Request{req(1, "p1", 0, 0, 0), req(2, "p1", 10, 0, 5)}
	afterNear := []*wire.Request{req(3, "p2", 20, 0, 10)}
	afterFar := []*wire.Request{req(4, "p2", 5000, 0, 10)}
	if got := MaxPairLikelihood(before, afterNear, f); got < 0.9 {
		t.Fatalf("near continuation: %g", got)
	}
	if got := MaxPairLikelihood(before, afterFar, f); got != 0 {
		t.Fatalf("far continuation: %g", got)
	}
	if got := MaxPairLikelihood(nil, afterNear, f); got != 0 {
		t.Fatalf("empty set: %g", got)
	}
}

func TestComponentsRandomizedPartition(t *testing.T) {
	// Components must form a partition: every request in exactly one
	// component.
	rng := rand.New(rand.NewSource(4))
	var reqs []*wire.Request
	for i := 0; i < 120; i++ {
		reqs = append(reqs, req(int64(i), "p", rng.Float64()*1000, rng.Float64()*1000, int64(rng.Intn(600))))
	}
	comps := Components(reqs, Tracking{MaxSpeed: 8, HalfLife: 600}, 0.5)
	seen := map[wire.MsgID]int{}
	total := 0
	for _, comp := range comps {
		for _, r := range comp {
			seen[r.ID]++
			total++
		}
	}
	if total != len(reqs) {
		t.Fatalf("partition covers %d of %d", total, len(reqs))
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("request %d appears %d times", id, n)
		}
	}
}
