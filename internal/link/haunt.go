package link

import (
	"math"

	"histanon/internal/wire"
)

// Haunt implements the second linking technique the paper names in
// §5.2: "pattern matching of traces (to guess, for example, recurring
// traces)". The attacker profiles each pseudonym by the recurring
// (spatial cell × time-of-day slot) bins its request contexts fall
// into; two pseudonyms whose profiles overlap strongly probably belong
// to the same person — a commuter keeps returning to the same home and
// office cells at the same hours no matter how often the pseudonym
// rotates.
//
// Haunt is built over a full request log (profiles need the global
// view) and then answers the pairwise Link() queries of Def. 4: the
// likelihood of two requests is the Jaccard overlap of their
// pseudonyms' haunt profiles (1 for equal pseudonyms).
type Haunt struct {
	// CellSize is the spatial bin side in meters (default 750).
	CellSize float64
	// SlotLen is the time-of-day bin length in seconds (default 2 h).
	SlotLen int64
	// MinVisits is how many requests a bin needs before it counts as a
	// haunt (default 2) — one-off visits carry no recurring signal.
	MinVisits int

	profiles map[wire.Pseudonym]map[hauntBin]bool
}

type hauntBin struct {
	cx, cy int64
	slot   int64
}

// NewHaunt builds profiles from the attacker's view of the request log.
func NewHaunt(reqs []*wire.Request, cellSize float64, slotLen int64, minVisits int) *Haunt {
	h := &Haunt{CellSize: cellSize, SlotLen: slotLen, MinVisits: minVisits}
	h.Build(reqs)
	return h
}

func (h *Haunt) cellSize() float64 {
	if h.CellSize == 0 {
		return 750
	}
	return h.CellSize
}

func (h *Haunt) slotLen() int64 {
	if h.SlotLen == 0 {
		return 7200
	}
	return h.SlotLen
}

func (h *Haunt) minVisits() int {
	if h.MinVisits == 0 {
		return 2
	}
	return h.MinVisits
}

// Build (re)computes the per-pseudonym profiles from a request log.
func (h *Haunt) Build(reqs []*wire.Request) {
	const day = 86400
	counts := map[wire.Pseudonym]map[hauntBin]int{}
	for _, r := range reqs {
		c := r.Context.Area.Center()
		mid := (r.Context.Time.Start + r.Context.Time.End) / 2
		bin := hauntBin{
			cx:   int64(math.Floor(c.X / h.cellSize())),
			cy:   int64(math.Floor(c.Y / h.cellSize())),
			slot: ((mid % day) + day) % day / h.slotLen(),
		}
		if counts[r.Pseudonym] == nil {
			counts[r.Pseudonym] = map[hauntBin]int{}
		}
		counts[r.Pseudonym][bin]++
	}
	h.profiles = make(map[wire.Pseudonym]map[hauntBin]bool, len(counts))
	for ps, bins := range counts {
		prof := map[hauntBin]bool{}
		for bin, n := range bins {
			if n >= h.minVisits() {
				prof[bin] = true
			}
		}
		h.profiles[ps] = prof
	}
}

// Likelihood implements Func: the Jaccard similarity of the two
// pseudonyms' haunt profiles.
func (h *Haunt) Likelihood(a, b *wire.Request) float64 {
	if a == b || a.Pseudonym == b.Pseudonym {
		return 1
	}
	pa, pb := h.profiles[a.Pseudonym], h.profiles[b.Pseudonym]
	if len(pa) == 0 || len(pb) == 0 {
		return 0
	}
	inter := 0
	for bin := range pa {
		if pb[bin] {
			inter++
		}
	}
	union := len(pa) + len(pb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ProfileSize returns how many haunts a pseudonym's profile holds
// (diagnostics and tests).
func (h *Haunt) ProfileSize(ps wire.Pseudonym) int { return len(h.profiles[ps]) }
