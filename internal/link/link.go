// Package link implements the service-request linkability framework of
// the paper (§5.2): a function Link: R×R → [0,1] estimating the
// likelihood that two requests seen by a service provider were issued by
// the same user (Def. 4), and the induced link-connected sets at a
// threshold Θ (Def. 5).
//
// The paper assumes the trusted server "can replicate the techniques
// used by a possible attacker"; this package supplies those replicas:
// the trivial pseudonym linker and a multi-target-tracking linker in the
// spirit of Gruteser–Hoh (paper ref. [12]).
package link

import (
	"math"

	"histanon/internal/geo"
	"histanon/internal/wire"
)

// Func is a symmetric, reflexive linkability function over requests
// (paper Def. 4). Implementations must guarantee
// Likelihood(a,b) == Likelihood(b,a) and Likelihood(a,a) == 1.
type Func interface {
	Likelihood(a, b *wire.Request) float64
}

// Max combines linkers by taking the maximum likelihood — an attacker
// uses whichever technique links best.
type Max []Func

// Likelihood implements Func.
func (m Max) Likelihood(a, b *wire.Request) float64 {
	best := 0.0
	for _, f := range m {
		if l := f.Likelihood(a, b); l > best {
			best = l
			if best >= 1 {
				break
			}
		}
	}
	return best
}

// Pseudonym links two requests exactly when they carry the same
// pseudonym: the paper notes that "any two requests with the same
// UserPseudonym are clearly linkable" since pseudonyms are not shared.
type Pseudonym struct{}

// Likelihood implements Func.
func (Pseudonym) Likelihood(a, b *wire.Request) float64 {
	if a == b || a.Pseudonym == b.Pseudonym {
		return 1
	}
	return 0
}

// Tracking is a multi-target-tracking linker: it judges whether request
// b could plausibly continue the trajectory of request a (or vice
// versa) under a maximum-speed motion model, with confidence decaying
// over the time gap. It links across pseudonyms, which is exactly the
// attack that pseudonym changes alone do not stop.
type Tracking struct {
	// MaxSpeed is the fastest plausible user movement in m/s.
	// Zero means DefaultMaxSpeed.
	MaxSpeed float64
	// HalfLife is the time gap (seconds) at which tracking confidence
	// halves. Zero means DefaultHalfLife.
	HalfLife float64
}

// Default motion-model parameters: urban vehicle speed and a fifteen
// minute confidence half-life.
const (
	DefaultMaxSpeed = 17.0 // ~60 km/h
	DefaultHalfLife = 900.0
)

func (t Tracking) maxSpeed() float64 {
	if t.MaxSpeed == 0 {
		return DefaultMaxSpeed
	}
	return t.MaxSpeed
}

func (t Tracking) halfLife() float64 {
	if t.HalfLife == 0 {
		return DefaultHalfLife
	}
	return t.HalfLife
}

// Likelihood implements Func. The estimate is
//
//	reachability(a,b) × 2^(−gap/halfLife)
//
// where reachability is 1 when the spatial gap between the two request
// contexts is coverable at MaxSpeed within the temporal gap, decaying
// linearly to 0 at twice the coverable distance; overlapping contexts at
// overlapping times are fully reachable.
func (t Tracking) Likelihood(a, b *wire.Request) float64 {
	if a == b {
		return 1
	}
	// Temporal gap between the two context intervals (0 when they
	// overlap).
	var gap float64
	switch {
	case a.Context.Time.End < b.Context.Time.Start:
		gap = float64(b.Context.Time.Start - a.Context.Time.End)
	case b.Context.Time.End < a.Context.Time.Start:
		gap = float64(a.Context.Time.Start - b.Context.Time.End)
	}
	// Spatial gap between the two areas.
	dist := rectGap(a.Context.Area, b.Context.Area)

	reach := 1.0
	if dist > 0 {
		coverable := t.maxSpeed() * gap
		switch {
		case coverable <= 0:
			reach = 0
		case dist <= coverable:
			reach = 1
		case dist >= 2*coverable:
			reach = 0
		default:
			reach = 2 - dist/coverable
		}
	}
	decay := math.Exp2(-gap / t.halfLife())
	return reach * decay
}

// rectGap returns the minimum distance between two rectangles (0 when
// they intersect).
func rectGap(a, b geo.Rect) float64 {
	dx := math.Max(0, math.Max(b.MinX-a.MaxX, a.MinX-b.MaxX))
	dy := math.Max(0, math.Max(b.MinY-a.MaxY, a.MinY-b.MaxY))
	return math.Hypot(dx, dy)
}

// Components partitions the requests into link-connected components at
// threshold theta: the maximal subsets that are link-connected with
// likelihood theta in the sense of Def. 5. Pair evaluation is quadratic;
// callers working on long streams should window the input by time.
func Components(reqs []*wire.Request, f Func, theta float64) [][]*wire.Request {
	n := len(reqs)
	uf := newUnionFind(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if f.Likelihood(reqs[i], reqs[j]) >= theta {
				uf.union(i, j)
			}
		}
	}
	groups := map[int][]*wire.Request{}
	var roots []int
	for i, r := range reqs {
		root := uf.find(i)
		if _, ok := groups[root]; !ok {
			roots = append(roots, root)
		}
		groups[root] = append(groups[root], r)
	}
	out := make([][]*wire.Request, 0, len(roots))
	for _, root := range roots {
		out = append(out, groups[root])
	}
	return out
}

// IsLinkConnected reports whether the request set R' is link-connected
// with likelihood theta (paper Def. 5): every pair must be joined by a
// chain inside R' whose consecutive links all have likelihood >= theta.
func IsLinkConnected(set []*wire.Request, f Func, theta float64) bool {
	n := len(set)
	if n <= 1 {
		return true
	}
	uf := newUnionFind(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if f.Likelihood(set[i], set[j]) >= theta {
				uf.union(i, j)
			}
		}
	}
	root := uf.find(0)
	for i := 1; i < n; i++ {
		if uf.find(i) != root {
			return false
		}
	}
	return true
}

// MaxPairLikelihood returns the largest cross-pair likelihood between
// two request sets — the measure the Unlinking action of §6.3 must push
// below Θ.
func MaxPairLikelihood(a, b []*wire.Request, f Func) float64 {
	best := 0.0
	for _, ra := range a {
		for _, rb := range b {
			if l := f.Likelihood(ra, rb); l > best {
				best = l
			}
		}
	}
	return best
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *unionFind) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
}
