package link

import (
	"fmt"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/wire"
)

// haunts builds a request log: pseudonym ps visits (x,y) daily at the
// given second-of-day for `days` days.
func hauntLog(ps string, x, y float64, sod int64, days int) []*wire.Request {
	var out []*wire.Request
	for d := 0; d < days; d++ {
		out = append(out, &wire.Request{
			ID:        wire.MsgID(d),
			Pseudonym: wire.Pseudonym(ps),
			Context: geo.STBox{
				Area: geo.RectAround(geo.Point{X: x, Y: y}).Expand(50),
				Time: geo.IntervalAround(int64(d)*86400 + sod).Union(
					geo.Interval{Start: int64(d)*86400 + sod - 300, End: int64(d)*86400 + sod + 300}),
			},
		})
	}
	return out
}

func TestHauntLinksRecurringPseudonyms(t *testing.T) {
	// "old" and "new" are the same commuter before and after a rotation:
	// same home cell at 8am, same office cell at 9am. "other" lives
	// elsewhere.
	var log []*wire.Request
	log = append(log, hauntLog("old", 100, 100, 8*3600, 4)...)
	log = append(log, hauntLog("old", 3000, 100, 9*3600, 4)...)
	log = append(log, hauntLog("new", 110, 90, 8*3600+600, 4)...)
	log = append(log, hauntLog("new", 3010, 110, 9*3600+600, 4)...)
	log = append(log, hauntLog("other", 7000, 7000, 8*3600, 4)...)

	h := NewHaunt(log, 750, 7200, 2)
	sameUser := h.Likelihood(log[0], log[8])  // old vs new
	diffUser := h.Likelihood(log[0], log[16]) // old vs other
	if sameUser < 0.9 {
		t.Fatalf("recurring haunts must link strongly: %g", sameUser)
	}
	if diffUser != 0 {
		t.Fatalf("disjoint haunts must not link: %g", diffUser)
	}
	if got := h.Likelihood(log[0], log[1]); got != 1 {
		t.Fatalf("same pseudonym: %g", got)
	}
}

func TestHauntMinVisits(t *testing.T) {
	// A single visit to a bin is no haunt: profiles stay empty and
	// nothing links.
	var log []*wire.Request
	log = append(log, hauntLog("a", 100, 100, 8*3600, 1)...)
	log = append(log, hauntLog("b", 100, 100, 8*3600, 1)...)
	h := NewHaunt(log, 750, 7200, 2)
	if got := h.Likelihood(log[0], log[1]); got != 0 {
		t.Fatalf("one-off visits must not form haunts: %g", got)
	}
	if h.ProfileSize("a") != 0 {
		t.Fatalf("profile size: %d", h.ProfileSize("a"))
	}
}

func TestHauntPartialOverlap(t *testing.T) {
	// Pseudonyms sharing one of two haunts: Jaccard 1/3.
	var log []*wire.Request
	log = append(log, hauntLog("a", 100, 100, 8*3600, 3)...)
	log = append(log, hauntLog("a", 3000, 100, 9*3600, 3)...)
	log = append(log, hauntLog("b", 100, 100, 8*3600, 3)...)
	log = append(log, hauntLog("b", 9000, 9000, 20*3600, 3)...)
	h := NewHaunt(log, 750, 7200, 2)
	got := h.Likelihood(log[0], log[6])
	if got < 0.3 || got > 0.4 {
		t.Fatalf("partial overlap: %g want ~1/3", got)
	}
}

func TestHauntSymmetricReflexive(t *testing.T) {
	var log []*wire.Request
	for i := 0; i < 6; i++ {
		log = append(log, hauntLog(fmt.Sprintf("p%d", i%3), float64(i*500), 0, int64(i)*3600, 3)...)
	}
	h := NewHaunt(log, 750, 7200, 2)
	for _, a := range log {
		if h.Likelihood(a, a) != 1 {
			t.Fatal("reflexivity")
		}
		for _, b := range log {
			if h.Likelihood(a, b) != h.Likelihood(b, a) {
				t.Fatal("symmetry")
			}
		}
	}
}

func TestHauntUnknownPseudonym(t *testing.T) {
	h := NewHaunt(nil, 0, 0, 0)
	a := &wire.Request{Pseudonym: "x"}
	b := &wire.Request{Pseudonym: "y"}
	if got := h.Likelihood(a, b); got != 0 {
		t.Fatalf("unknown pseudonyms: %g", got)
	}
}
