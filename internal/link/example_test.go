package link_test

import (
	"fmt"

	"histanon/internal/geo"
	"histanon/internal/link"
	"histanon/internal/wire"
)

// The linkability framework of Def. 4/5: the tracking linker joins
// requests whose contexts form a physically plausible trajectory, even
// across pseudonyms; link-connected components are the attacker's view
// of "probably the same person".
func Example() {
	at := func(id int64, ps string, x float64, t int64) *wire.Request {
		return &wire.Request{
			ID:        wire.MsgID(id),
			Pseudonym: wire.Pseudonym(ps),
			Context: geo.STBox{
				Area: geo.RectAround(geo.Point{X: x}),
				Time: geo.IntervalAround(t),
			},
		}
	}
	// A walker heading east, rotating pseudonyms mid-way, and an
	// unrelated request far away.
	reqs := []*wire.Request{
		at(1, "old", 0, 0),
		at(2, "old", 60, 60),
		at(3, "new", 120, 120), // pseudonym changed, trajectory continuous
		at(4, "other", 50000, 100),
	}
	f := link.Max{link.Pseudonym{}, link.Tracking{MaxSpeed: 2, HalfLife: 3600}}
	comps := link.Components(reqs, f, 0.7)
	fmt.Println("components:", len(comps))
	for _, c := range comps {
		fmt.Println("  size:", len(c))
	}
	fmt.Printf("cross-pseudonym link: %.2f\n", f.Likelihood(reqs[1], reqs[2]))
	// Output:
	// components: 2
	//   size: 3
	//   size: 1
	// cross-pseudonym link: 0.99
}
