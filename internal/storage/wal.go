package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// SyncPolicy selects when the WAL fsyncs.
type SyncPolicy int

const (
	// SyncBatch (the default) group-commits: an append returns once a
	// single fsync covering it — possibly issued by a concurrent
	// appender — completes. One disk flush amortizes over every record
	// written while the previous flush was in flight.
	SyncBatch SyncPolicy = iota
	// SyncAlways fsyncs every record before acknowledging it.
	SyncAlways
	// SyncNone never fsyncs from the hot path: durability is bounded
	// by the OS flush interval. Crash loses the unflushed tail.
	SyncNone
)

// ParseSyncPolicy maps the -wal-fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "batch", "":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "none":
		return SyncNone, nil
	}
	return 0, fmt.Errorf("storage: unknown fsync policy %q (want batch, always or none)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "batch"
	}
}

const (
	walMagic   = "PWL1"
	walVersion = 1
	// walHeaderLen is magic(4) + version(1) + firstSeq(8) + crc(4).
	walHeaderLen = 17
	// maxWALRecord bounds one record's payload; anything larger in a
	// length prefix is corruption, mirroring wire.MaxFrameBytes.
	maxWALRecord = 1 << 16
)

// ErrWALFailed is wrapped by every operation on a failed WAL: the first
// write or sync error is fail-stop, and the store above degrades to
// audited suppression rather than acknowledging undurable updates.
var ErrWALFailed = errors.New("storage: wal failed")

// WAL is the append-only write-ahead log: CRC-framed varint records in
// size-rotated segment files. Sequence numbers start at 1 and index
// records across segments; a segment file is named by the sequence of
// its first record.
type WAL struct {
	fs  FS
	dir string

	policy   SyncPolicy
	segBytes int64 // rotation threshold

	mu      sync.Mutex
	cond    *sync.Cond
	seg     File
	segName string
	segSize int64
	segSeqs []uint64 // firstSeq of every live segment, ascending
	seq     uint64   // last assigned sequence
	synced  uint64   // last sequence known durable
	syncing bool     // a group-commit fsync is in flight
	failed  error    // sticky first error

	buf []byte

	appends atomic.Int64
	fsyncs  atomic.Int64
	bytes   atomic.Int64
	errs    atomic.Int64
}

// openWAL creates the WAL's next segment after recovery replayed
// through lastSeq and returns a WAL ready for appends.
func openWAL(fsys FS, dir string, policy SyncPolicy, segBytes int64, lastSeq uint64, live []uint64) (*WAL, error) {
	if segBytes <= 0 {
		segBytes = 64 << 20
	}
	w := &WAL{fs: fsys, dir: dir, policy: policy, segBytes: segBytes, seq: lastSeq, synced: lastSeq}
	w.cond = sync.NewCond(&w.mu)
	w.segSeqs = append(w.segSeqs, live...)
	if err := w.openSegment(lastSeq + 1); err != nil {
		return nil, err
	}
	return w, nil
}

func walSegmentName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x.log", firstSeq) }

// parseWALSegmentName returns the firstSeq encoded in a segment file
// name, or ok=false for other files.
func parseWALSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	hexpart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
	if len(hexpart) != 16 {
		return 0, false
	}
	var v uint64
	for _, c := range hexpart {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return v, true
}

// openSegment creates the segment whose first record will be firstSeq;
// caller holds no lock (construction) or w.mu (rotation).
func (w *WAL) openSegment(firstSeq uint64) error {
	name := join(w.dir, walSegmentName(firstSeq))
	f, err := w.fs.Create(name)
	if err != nil {
		return err
	}
	hdr := make([]byte, 0, walHeaderLen)
	hdr = append(hdr, walMagic...)
	hdr = append(hdr, walVersion)
	hdr = binary.LittleEndian.AppendUint64(hdr, firstSeq)
	hdr = binary.LittleEndian.AppendUint32(hdr, crc(hdr))
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return err
	}
	// The name must survive a crash before the records do.
	if err := w.fs.SyncDir(w.dir); err != nil {
		f.Close()
		return err
	}
	w.seg = f
	w.segName = name
	w.segSize = walHeaderLen
	w.segSeqs = append(w.segSeqs, firstSeq)
	return nil
}

// fail records the sticky failure; caller holds w.mu.
func (w *WAL) fail(err error) error {
	if w.failed == nil {
		w.failed = fmt.Errorf("%w: %v", ErrWALFailed, err)
		w.errs.Add(1)
		w.cond.Broadcast()
	}
	return w.failed
}

// Append writes one record and returns its sequence number. The record
// is NOT durable until Commit(seq) returns nil.
func (w *WAL) Append(u phl.UserID, p geo.STPoint) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return 0, w.failed
	}
	w.buf = w.buf[:0]
	payload := appendSample(nil, u, p)
	w.buf = binary.AppendUvarint(w.buf, uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc(payload))
	if _, err := w.seg.Write(w.buf); err != nil {
		return 0, w.fail(err)
	}
	w.seq++
	w.segSize += int64(len(w.buf))
	w.appends.Add(1)
	w.bytes.Add(int64(len(w.buf)))
	if w.segSize >= w.segBytes {
		if err := w.rotate(); err != nil {
			return 0, w.fail(err)
		}
	}
	return w.seq, nil
}

// rotate syncs and closes the current segment and opens the next;
// caller holds w.mu.
func (w *WAL) rotate() error {
	// Wait out any in-flight group commit: it holds the old file
	// handle, and closing it underneath the fsync would race.
	for w.syncing {
		w.cond.Wait()
		if w.failed != nil {
			return w.failed
		}
	}
	if err := w.seg.Sync(); err != nil {
		return err
	}
	w.fsyncs.Add(1)
	if err := w.seg.Close(); err != nil {
		return err
	}
	w.synced = w.seq
	w.cond.Broadcast()
	return w.openSegment(w.seq + 1)
}

// Commit makes the record with the given sequence durable per the sync
// policy. Under SyncBatch, whichever appender arrives first leads a
// group commit; appenders whose record the leader's fsync covered
// return without issuing their own.
func (w *WAL) Commit(seq uint64) error {
	if w.policy == SyncNone {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if w.failed != nil {
			return w.failed
		}
		if w.synced >= seq {
			return nil
		}
		if !w.syncing {
			break
		}
		w.cond.Wait()
	}
	w.syncing = true
	f := w.seg
	target := w.seq
	w.mu.Unlock()
	err := f.Sync()
	w.mu.Lock()
	w.syncing = false
	if err != nil {
		w.cond.Broadcast()
		return w.fail(err)
	}
	w.fsyncs.Add(1)
	if target > w.synced {
		w.synced = target
	}
	w.cond.Broadcast()
	return nil
}

// Prune deletes segments every record of which has sequence <= upTo
// (because a durable snapshot now covers them). The active segment is
// never deleted.
func (w *WAL) Prune(upTo uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	keep := w.segSeqs[:0]
	var firstErr error
	for i, first := range w.segSeqs {
		// Segment i covers [first, next-1]; the last entry is the
		// active segment.
		if i+1 < len(w.segSeqs) && w.segSeqs[i+1]-1 <= upTo {
			if err := w.fs.Remove(join(w.dir, walSegmentName(first))); err != nil && firstErr == nil {
				firstErr = err
			}
			continue
		}
		keep = append(keep, first)
	}
	w.segSeqs = keep
	if firstErr != nil {
		return firstErr
	}
	return w.fs.SyncDir(w.dir)
}

// LastSeq returns the last assigned sequence number.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Lag returns how many acknowledged-pending records await an fsync.
func (w *WAL) Lag() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return int64(w.seq - w.synced)
}

// Err returns the sticky failure, if any.
func (w *WAL) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.failed
}

// Close syncs and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.failed != nil {
		return w.failed
	}
	for w.syncing {
		w.cond.Wait()
		if w.failed != nil {
			return w.failed
		}
	}
	if err := w.seg.Sync(); err != nil {
		return w.fail(err)
	}
	w.fsyncs.Add(1)
	w.synced = w.seq
	if err := w.seg.Close(); err != nil {
		return w.fail(err)
	}
	return nil
}

// walReplayInfo reports what a replay saw.
type walReplayInfo struct {
	lastSeq   uint64   // last good record's sequence (0 = none)
	replayed  int      // records delivered to the callback
	skipped   int      // records at or below afterSeq (already snapshotted)
	tornTail  bool     // the final segment ended mid-record or with a bad CRC
	tornBytes int64    // bytes discarded from the final segment
	segments  []uint64 // firstSeq of every live segment, ascending
}

// replayWAL scans the directory's WAL segments in order and delivers
// every record with sequence > afterSeq to fn. A short or corrupt tail
// is tolerated only at the very end of the final segment — the one
// place a crash mid-append legitimately leaves one — and reported;
// anywhere else it is corruption and replay refuses (fail closed: a
// silent gap would weaken every anonymity set computed afterwards).
func replayWAL(fsys FS, dir string, afterSeq uint64, fn func(seq uint64, u phl.UserID, p geo.STPoint) error) (walReplayInfo, error) {
	var info walReplayInfo
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return info, err
	}
	var firsts []uint64
	for _, name := range names {
		if first, ok := parseWALSegmentName(name); ok {
			firsts = append(firsts, first)
		}
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	info.segments = firsts
	seq := uint64(0)
	for i, first := range firsts {
		last := i == len(firsts)-1
		if seq != 0 && first != seq+1 {
			return info, fmt.Errorf("storage: wal gap: segment %s follows sequence %d", walSegmentName(first), seq)
		}
		if seq == 0 {
			// The first live segment may start anywhere at or below
			// afterSeq+1 (earlier ones were pruned); above it there
			// would be a hole after the snapshot chain.
			if first > afterSeq+1 {
				return info, fmt.Errorf("storage: wal gap: snapshots cover through %d but oldest segment starts at %d", afterSeq, first)
			}
			seq = first - 1
		}
		n, err := replaySegment(fsys, join(dir, walSegmentName(first)), first, last, &seq, afterSeq, fn, &info)
		if err != nil {
			return info, err
		}
		_ = n
	}
	info.lastSeq = seq
	return info, nil
}

// replaySegment reads one segment; lastSegment selects torn-tail
// tolerance. seq is advanced per good record.
func replaySegment(fsys FS, path string, firstSeq uint64, lastSegment bool, seq *uint64, afterSeq uint64, fn func(uint64, phl.UserID, geo.STPoint) error, info *walReplayInfo) (int, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	data := make([]byte, size)
	if size > 0 {
		if n, err := f.ReadAt(data, 0); int64(n) != size {
			return 0, fmt.Errorf("storage: short read of %s: %v", path, err)
		}
	}
	if len(data) < walHeaderLen {
		if lastSegment {
			// A crash right after segment creation can leave a short
			// header; there are no records to lose.
			info.tornTail = true
			info.tornBytes += int64(len(data))
			return 0, nil
		}
		return 0, fmt.Errorf("storage: wal segment %s: truncated header", path)
	}
	hdr := data[:walHeaderLen]
	if string(hdr[:4]) != walMagic || hdr[4] != walVersion {
		return 0, fmt.Errorf("storage: wal segment %s: bad magic or version", path)
	}
	if binary.LittleEndian.Uint32(hdr[13:]) != crc(hdr[:13]) {
		return 0, fmt.Errorf("storage: wal segment %s: header checksum mismatch", path)
	}
	if got := binary.LittleEndian.Uint64(hdr[5:13]); got != firstSeq {
		return 0, fmt.Errorf("storage: wal segment %s: header sequence %d does not match name", path, got)
	}
	off := walHeaderLen
	count := 0
	// A bad record is a torn tail — tolerable, in the final segment
	// only — when the damage plausibly comes from one interrupted
	// append at end of file: the frame runs past EOF, or it is the very
	// last frame and its CRC fails (a torn sector under the tail).
	// Damage strictly inside the segment, with sound frames after it,
	// is corruption and replay refuses: a silent gap would weaken every
	// anonymity set computed over the recovered PHL.
	tornOrCorrupt := func(reachesEOF bool, what string) error {
		if lastSegment && reachesEOF {
			info.tornTail = true
			info.tornBytes += int64(len(data) - off)
			return nil
		}
		return fmt.Errorf("storage: wal segment %s: %s at offset %d", path, what, off)
	}
	for off < len(data) {
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 || plen > maxWALRecord {
			// Unparseable length: its frame extent is unknown. More
			// trailing bytes than one maximal frame cannot be a single
			// interrupted append.
			return count, tornOrCorrupt(len(data)-off <= maxWALRecord+14, "bad record length")
		}
		start := off + n
		end := start + int(plen) + 4
		if end > len(data) {
			return count, tornOrCorrupt(true, "short record")
		}
		payload := data[start : start+int(plen)]
		if binary.LittleEndian.Uint32(data[start+int(plen):end]) != crc(payload) {
			return count, tornOrCorrupt(end == len(data), "record checksum mismatch")
		}
		r := sampleReader{buf: payload}
		u, p, err := r.sample()
		if err != nil || r.len() != 0 {
			// The checksum matched, so these bytes were durably written
			// as-is; a writer never produces an undecodable payload.
			return count, fmt.Errorf("storage: wal segment %s: undecodable record at offset %d: %v", path, off, err)
		}
		*seq++
		off = end
		count++
		if *seq <= afterSeq {
			info.skipped++
			continue
		}
		if err := fn(*seq, u, p); err != nil {
			return count, err
		}
		info.replayed++
	}
	return count, nil
}
