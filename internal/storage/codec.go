package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// The on-disk encodings reuse internal/wire's varint idioms: zigzag
// varints for signed fields, and dual fixed-point/IEEE coordinates —
// positions from real deployments are finite decimals that a 2^20
// fixed-point grid represents exactly in a few bytes, while arbitrary
// float64s (simulation workloads) fall back to raw IEEE bits so decode
// is always bit-exact.

// coordScale is the fixed-point coordinate scale: 2^20 units per meter,
// a power of two so scaling is exact for every representable value.
const coordScale = 1 << 20

// coordMaxAbs bounds fixed-point magnitudes to the float64
// exact-integer range, so int64→float64 on decode cannot round.
const coordMaxAbs = 1 << 53

// record flag bits.
const (
	flagFixedX = 1 << 0 // X is fixed-point zigzag varint, else IEEE bits
	flagFixedY = 1 << 1 // Y likewise
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// fixedCoord reports whether v is exactly representable in fixed point
// and, if so, its scaled integer value. Negative zero, NaN, infinities
// and magnitudes leaving the exact-integer range are excluded.
func fixedCoord(v float64) (int64, bool) {
	if v == 0 {
		return 0, !math.Signbit(v)
	}
	f := v * coordScale
	if math.IsInf(f, 0) || f != math.Trunc(f) || math.Abs(f) > coordMaxAbs {
		return 0, false
	}
	return int64(f), true
}

// appendSample encodes one (user, sample) pair: flags byte, user zigzag
// varint, T zigzag varint, then each coordinate as either a fixed-point
// zigzag varint or 8 raw IEEE-754 bytes per its flag bit.
func appendSample(dst []byte, u phl.UserID, p geo.STPoint) []byte {
	var flags byte
	fx, okx := fixedCoord(p.P.X)
	fy, oky := fixedCoord(p.P.Y)
	if okx {
		flags |= flagFixedX
	}
	if oky {
		flags |= flagFixedY
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, zigzag(int64(u)))
	dst = binary.AppendUvarint(dst, zigzag(p.T))
	if okx {
		dst = binary.AppendUvarint(dst, zigzag(fx))
	} else {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.P.X))
	}
	if oky {
		dst = binary.AppendUvarint(dst, zigzag(fy))
	} else {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(p.P.Y))
	}
	return dst
}

// sampleReader decodes appendSample payloads from a byte slice with
// minimal-form varint enforcement (a non-canonical encoding is
// corruption, not an alternative spelling — recovery must not accept
// bytes the writer could never have produced).
type sampleReader struct {
	buf []byte
	off int
}

func (r *sampleReader) len() int { return len(r.buf) - r.off }

func (r *sampleReader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, fmt.Errorf("storage: truncated record")
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *sampleReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("storage: bad varint")
	}
	// Minimal form: re-encoding must not shrink.
	if n > 1 && v>>(7*(n-1)) == 0 {
		return 0, fmt.Errorf("storage: non-minimal varint")
	}
	r.off += n
	return v, nil
}

func (r *sampleReader) u64() (uint64, error) {
	if r.off+8 > len(r.buf) {
		return 0, fmt.Errorf("storage: truncated float")
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

// sample decodes one (user, sample) pair.
func (r *sampleReader) sample() (phl.UserID, geo.STPoint, error) {
	var p geo.STPoint
	flags, err := r.byte()
	if err != nil {
		return 0, p, err
	}
	if flags&^(flagFixedX|flagFixedY) != 0 {
		return 0, p, fmt.Errorf("storage: unknown sample flags %#x", flags)
	}
	uu, err := r.uvarint()
	if err != nil {
		return 0, p, err
	}
	tt, err := r.uvarint()
	if err != nil {
		return 0, p, err
	}
	p.T = unzigzag(tt)
	if flags&flagFixedX != 0 {
		v, err := r.uvarint()
		if err != nil {
			return 0, p, err
		}
		p.P.X = float64(unzigzag(v)) / coordScale
	} else {
		v, err := r.u64()
		if err != nil {
			return 0, p, err
		}
		p.P.X = math.Float64frombits(v)
	}
	if flags&flagFixedY != 0 {
		v, err := r.uvarint()
		if err != nil {
			return 0, p, err
		}
		p.P.Y = float64(unzigzag(v)) / coordScale
	} else {
		v, err := r.u64()
		if err != nil {
			return 0, p, err
		}
		p.P.Y = math.Float64frombits(v)
	}
	return phl.UserID(unzigzag(uu)), p, nil
}

// castagnoli is the CRC-32C table; the same polynomial guards WAL
// records, snapshot runs and whole snapshot files.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }
