package storage

import (
	"math/rand"
	"runtime"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// TestTieredBoundedMemoryMillionUpdates is the bounded-memory guard:
// a 10⁶-update PHL ingested on a real filesystem must end up almost
// entirely demoted to disk, with the resident heap bounded far below
// what holding the same history in memory costs (~50 MB and up for
// 10⁶ samples across point slices and per-user structures), while
// still answering queries over the full, mostly-cold history.
func TestTieredBoundedMemoryMillionUpdates(t *testing.T) {
	if raceEnabled {
		t.Skip("heap accounting is skewed under -race")
	}
	if testing.Short() {
		t.Skip("10⁶-update ingestion")
	}
	const (
		n     = 1_000_000
		users = 1000
		span  = int64(n)
	)
	dir := t.TempDir()

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	st, _, err := Open(Options{Dir: dir, Sync: SyncNone, HotWindow: span / 20})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	perUser := make([]int, users)
	for i := 0; i < n; i++ {
		u := rng.Intn(users)
		perUser[u]++
		st.Record(phl.UserID(u), geo.STPoint{
			P: geo.Point{X: rng.Float64() * 20e3, Y: rng.Float64() * 20e3},
			T: int64(i) * span / n,
		})
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	growth := int64(after.HeapAlloc) - int64(before.HeapAlloc)

	stats := st.Stats()
	if stats.ColdSamples < n*9/10 {
		t.Fatalf("only %d of %d samples demoted; the guard is vacuous", stats.ColdSamples, n)
	}
	if stats.HotSamples > n/10 {
		t.Fatalf("%d samples still hot, want < %d", stats.HotSamples, n/10)
	}
	// The measured steady state is ~9 MB (cold-run catalog + hot
	// window + cache); 32 MB leaves slack for allocator noise while
	// still failing if demotion ever stops releasing memory.
	if limit := int64(32 << 20); growth > limit {
		t.Fatalf("heap grew %d bytes over the 10⁶-update ingestion, want <= %d", growth, limit)
	}

	// The demoted history must still be fully served.
	if got := st.NumSamples(); got != n {
		t.Fatalf("NumSamples = %d, want %d", got, n)
	}
	for trial := 0; trial < 50; trial++ {
		u := rng.Intn(users)
		if got := st.History(phl.UserID(u)).Len(); got != perUser[u] {
			t.Fatalf("History(%d).Len() = %d, want %d", u, got, perUser[u])
		}
	}
	everything := geo.STBox{
		Area: geo.Rect{MinX: 0, MinY: 0, MaxX: 20e3, MaxY: 20e3},
		Time: geo.Interval{Start: 0, End: span},
	}
	if got := st.CountUsersIn(everything); got != users {
		t.Fatalf("CountUsersIn(everything) = %d, want %d", got, users)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}
