package storage

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// Snapshot files carry the durable PHL state the WAL tail is replayed
// on top of. A delta file holds the samples appended since the previous
// file in the chain (grouped per user, time-sorted); a full file —
// written only at compaction — holds everything. Each file ends in an
// index block giving every user run's offset, extent, bounding box and
// CRC, so the cold tier can read one user's history without touching
// the rest of the file.
//
// Layout:
//
//	header   magic "PSN1" | version | kind | seq u64 | prevSeq u64 | crc32c
//	body     per-user runs: samples in appendSample encoding
//	index    entryCount uvarint, then per run:
//	         user zigzag | offset uvarint | bytes uvarint | count uvarint |
//	         minT zigzag | maxT zigzag | minX minY maxX maxY f64 | crc32c(run)
//	trailer  indexOffset u64 | fileCRC u32  (fileCRC covers all prior bytes)
//
// seq is the WAL sequence watermark: the chain through this file holds
// exactly the samples of WAL records 1..seq. prevSeq chains deltas to
// their predecessor (a full file has prevSeq 0); recovery refuses a
// chain with a gap — a missing delta is corruption, not an option.
const (
	snapMagic   = "PSN1"
	snapVersion = 1
	// snapHeaderLen is magic(4)+version(1)+kind(1)+seq(8)+prevSeq(8)+crc(4).
	snapHeaderLen = 26
)

type snapKind byte

const (
	snapFull  snapKind = 0
	snapDelta snapKind = 1
)

func snapshotName(kind snapKind, seq uint64) string {
	if kind == snapFull {
		return fmt.Sprintf("full-%016x.snap", seq)
	}
	return fmt.Sprintf("delta-%016x.snap", seq)
}

// parseSnapshotName inverts snapshotName; ok=false for other files.
func parseSnapshotName(name string) (snapKind, uint64, bool) {
	var kind snapKind
	var hexpart string
	switch {
	case strings.HasPrefix(name, "full-") && strings.HasSuffix(name, ".snap"):
		kind, hexpart = snapFull, strings.TrimSuffix(strings.TrimPrefix(name, "full-"), ".snap")
	case strings.HasPrefix(name, "delta-") && strings.HasSuffix(name, ".snap"):
		kind, hexpart = snapDelta, strings.TrimSuffix(strings.TrimPrefix(name, "delta-"), ".snap")
	default:
		return 0, 0, false
	}
	if len(hexpart) != 16 {
		return 0, 0, false
	}
	var v uint64
	for _, c := range hexpart {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, 0, false
		}
	}
	return kind, v, true
}

// runRef locates one user's run inside one snapshot file: the in-memory
// catalog entry the cold tier prunes and reads by. It costs ~80 bytes
// regardless of how many samples the run holds — that is the memory the
// hot/cold split trades disk reads for.
type runRef struct {
	user       phl.UserID
	offset     int64 // absolute file offset
	length     int64 // encoded byte length
	count      int   // samples in the run
	minT, maxT int64
	bbox       geo.Rect
	crc        uint32
}

// userRun pairs a user with the samples to dump into one run.
type userRun struct {
	user phl.UserID
	pts  []geo.STPoint
}

// encodeSnapshot renders a complete snapshot file image. Runs must be
// per-user time-sorted; users are written in the given order.
func encodeSnapshot(kind snapKind, seq, prevSeq uint64, runs []userRun) []byte {
	buf := make([]byte, 0, 64+len(runs)*64)
	buf = append(buf, snapMagic...)
	buf = append(buf, snapVersion, byte(kind))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = binary.LittleEndian.AppendUint64(buf, prevSeq)
	buf = binary.LittleEndian.AppendUint32(buf, crc(buf))

	type entry struct {
		runRef
	}
	entries := make([]entry, 0, len(runs))
	for _, run := range runs {
		if len(run.pts) == 0 {
			continue
		}
		start := len(buf)
		minT, maxT := run.pts[0].T, run.pts[0].T
		bbox := geo.RectAround(run.pts[0].P)
		for _, p := range run.pts {
			buf = appendSample(buf, run.user, p)
			if p.T < minT {
				minT = p.T
			}
			if p.T > maxT {
				maxT = p.T
			}
			bbox = bbox.Extend(p.P)
		}
		entries = append(entries, entry{runRef{
			user:   run.user,
			offset: int64(start),
			length: int64(len(buf) - start),
			count:  len(run.pts),
			minT:   minT,
			maxT:   maxT,
			bbox:   bbox,
			crc:    crc(buf[start:]),
		}})
	}

	indexOffset := uint64(len(buf))
	buf = binary.AppendUvarint(buf, uint64(len(entries)))
	for _, e := range entries {
		buf = binary.AppendUvarint(buf, zigzag(int64(e.user)))
		buf = binary.AppendUvarint(buf, uint64(e.offset))
		buf = binary.AppendUvarint(buf, uint64(e.length))
		buf = binary.AppendUvarint(buf, uint64(e.count))
		buf = binary.AppendUvarint(buf, zigzag(e.minT))
		buf = binary.AppendUvarint(buf, zigzag(e.maxT))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.bbox.MinX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.bbox.MinY))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.bbox.MaxX))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.bbox.MaxY))
		buf = binary.LittleEndian.AppendUint32(buf, e.crc)
	}
	buf = binary.LittleEndian.AppendUint64(buf, indexOffset)
	buf = binary.LittleEndian.AppendUint32(buf, crc(buf))
	return buf
}

// snapMeta is a decoded snapshot file: its chain position and catalog
// entries (not the samples themselves).
type snapMeta struct {
	kind    snapKind
	seq     uint64
	prevSeq uint64
	runs    []runRef
}

// decodeSnapshot parses and fully verifies a snapshot file image: file
// CRC, header, index block shape, and every entry's bounds. Run bodies
// are NOT decoded — the catalog alone suffices to serve cold queries,
// and per-run CRCs guard later reads.
func decodeSnapshot(data []byte) (*snapMeta, error) {
	if len(data) < snapHeaderLen+12 {
		return nil, fmt.Errorf("storage: snapshot truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != snapMagic || data[4] != snapVersion {
		return nil, fmt.Errorf("storage: snapshot bad magic or version")
	}
	if binary.LittleEndian.Uint32(data[snapHeaderLen-4:snapHeaderLen]) != crc(data[:snapHeaderLen-4]) {
		return nil, fmt.Errorf("storage: snapshot header checksum mismatch")
	}
	if got := binary.LittleEndian.Uint32(data[len(data)-4:]); got != crc(data[:len(data)-4]) {
		return nil, fmt.Errorf("storage: snapshot file checksum mismatch")
	}
	kind := snapKind(data[5])
	if kind != snapFull && kind != snapDelta {
		return nil, fmt.Errorf("storage: snapshot unknown kind %d", kind)
	}
	m := &snapMeta{
		kind:    kind,
		seq:     binary.LittleEndian.Uint64(data[6:14]),
		prevSeq: binary.LittleEndian.Uint64(data[14:22]),
	}
	indexOffset := binary.LittleEndian.Uint64(data[len(data)-12 : len(data)-4])
	if indexOffset < snapHeaderLen || indexOffset > uint64(len(data)-12) {
		return nil, fmt.Errorf("storage: snapshot index offset out of range")
	}
	r := sampleReader{buf: data[:len(data)-12], off: int(indexOffset)}
	n, err := r.uvarint()
	if err != nil {
		return nil, fmt.Errorf("storage: snapshot index: %v", err)
	}
	if n > uint64(indexOffset) { // each run is at least 1 byte
		return nil, fmt.Errorf("storage: snapshot index claims %d runs", n)
	}
	var prevEnd int64 = snapHeaderLen
	for i := uint64(0); i < n; i++ {
		var e runRef
		var v uint64
		if v, err = r.uvarint(); err != nil {
			return nil, fmt.Errorf("storage: snapshot index entry %d: %v", i, err)
		}
		e.user = phl.UserID(unzigzag(v))
		if v, err = r.uvarint(); err != nil {
			return nil, fmt.Errorf("storage: snapshot index entry %d: %v", i, err)
		}
		e.offset = int64(v)
		if v, err = r.uvarint(); err != nil {
			return nil, fmt.Errorf("storage: snapshot index entry %d: %v", i, err)
		}
		e.length = int64(v)
		if v, err = r.uvarint(); err != nil {
			return nil, fmt.Errorf("storage: snapshot index entry %d: %v", i, err)
		}
		if v > uint64(e.length) { // each sample is at least 4 bytes, so count <= length
			return nil, fmt.Errorf("storage: snapshot index entry %d: count %d exceeds run bytes", i, v)
		}
		e.count = int(v)
		if v, err = r.uvarint(); err != nil {
			return nil, fmt.Errorf("storage: snapshot index entry %d: %v", i, err)
		}
		e.minT = unzigzag(v)
		if v, err = r.uvarint(); err != nil {
			return nil, fmt.Errorf("storage: snapshot index entry %d: %v", i, err)
		}
		e.maxT = unzigzag(v)
		var f [4]float64
		for j := range f {
			u, err := r.u64()
			if err != nil {
				return nil, fmt.Errorf("storage: snapshot index entry %d: %v", i, err)
			}
			f[j] = math.Float64frombits(u)
		}
		e.bbox = geo.Rect{MinX: f[0], MinY: f[1], MaxX: f[2], MaxY: f[3]}
		u32, err := r.u64crc()
		if err != nil {
			return nil, fmt.Errorf("storage: snapshot index entry %d: %v", i, err)
		}
		e.crc = u32
		// Runs must tile the body in order with no gaps or overlaps:
		// anything else cannot have come from the writer.
		if e.offset != prevEnd || e.length <= 0 || e.minT > e.maxT || !e.bbox.Valid() {
			return nil, fmt.Errorf("storage: snapshot index entry %d: malformed run bounds", i)
		}
		prevEnd = e.offset + e.length
		if prevEnd > int64(indexOffset) {
			return nil, fmt.Errorf("storage: snapshot index entry %d: run exceeds body", i)
		}
		m.runs = append(m.runs, e)
	}
	if prevEnd != int64(indexOffset) {
		return nil, fmt.Errorf("storage: snapshot body has %d bytes not covered by the index", int64(indexOffset)-prevEnd)
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("storage: snapshot index has %d trailing bytes", len(r.buf)-r.off)
	}
	return m, nil
}

// u64crc reads a 4-byte CRC field.
func (r *sampleReader) u64crc() (uint32, error) {
	if r.off+4 > len(r.buf) {
		return 0, fmt.Errorf("storage: truncated checksum")
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

// decodeRun decodes one run body previously located by a runRef. Every
// sample must carry the run's user and arrive time-sorted, or the run
// is corrupt.
func decodeRun(data []byte, ref runRef) ([]geo.STPoint, error) {
	if crc(data) != ref.crc {
		return nil, fmt.Errorf("storage: run for %v: checksum mismatch", ref.user)
	}
	pts := make([]geo.STPoint, 0, ref.count)
	r := sampleReader{buf: data}
	for r.len() > 0 {
		u, p, err := r.sample()
		if err != nil {
			return nil, fmt.Errorf("storage: run for %v: %v", ref.user, err)
		}
		if u != ref.user {
			return nil, fmt.Errorf("storage: run for %v: sample for %v", ref.user, u)
		}
		if len(pts) > 0 && p.T < pts[len(pts)-1].T {
			return nil, fmt.Errorf("storage: run for %v: samples out of order", ref.user)
		}
		pts = append(pts, p)
	}
	if len(pts) != ref.count {
		return nil, fmt.Errorf("storage: run for %v: %d samples, index says %d", ref.user, len(pts), ref.count)
	}
	return pts, nil
}

// writeSnapshotFile atomically persists a snapshot image: temp file,
// fsync, rename to the final name, fsync the directory. Returns the
// final path.
func writeSnapshotFile(fsys FS, dir string, kind snapKind, seq uint64, img []byte) (string, error) {
	tmp := join(dir, snapshotName(kind, seq)+".tmp")
	final := join(dir, snapshotName(kind, seq))
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return "", err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return "", err
	}
	return final, nil
}

// loadSnapshotChain reads the directory's snapshot files and returns
// the live chain: the newest full file (if any) and every delta after
// it, in order, each fully verified. Files superseded by a newer full
// snapshot are returned in stale for deletion. A gap or verification
// failure refuses recovery.
func loadSnapshotChain(fsys FS, dir string) (chain []*snapMeta, paths []string, stale []string, err error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	type cand struct {
		kind snapKind
		seq  uint64
		name string
	}
	var cands []cand
	for _, name := range names {
		if strings.HasSuffix(name, ".tmp") {
			// An interrupted atomic write; harmless, delete later.
			stale = append(stale, join(dir, name))
			continue
		}
		if kind, seq, ok := parseSnapshotName(name); ok {
			cands = append(cands, cand{kind, seq, name})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	// The newest full snapshot starts the chain; anything older is
	// superseded.
	start := 0
	for i, c := range cands {
		if c.kind == snapFull {
			start = i
		}
	}
	for i, c := range cands {
		if i < start {
			stale = append(stale, join(dir, c.name))
		}
	}
	cands = cands[start:]
	var prevSeq uint64
	for i, c := range cands {
		path := join(dir, c.name)
		f, err := fsys.Open(path)
		if err != nil {
			return nil, nil, nil, err
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			return nil, nil, nil, err
		}
		data := make([]byte, size)
		if size > 0 {
			if n, err := f.ReadAt(data, 0); int64(n) != size {
				f.Close()
				return nil, nil, nil, fmt.Errorf("storage: short read of %s: %v", path, err)
			}
		}
		f.Close()
		m, err := decodeSnapshot(data)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("storage: %s: %v", path, err)
		}
		if m.kind != c.kind || m.seq != c.seq {
			return nil, nil, nil, fmt.Errorf("storage: %s: header disagrees with name", path)
		}
		if i == 0 && m.kind == snapDelta && m.prevSeq != 0 {
			return nil, nil, nil, fmt.Errorf("storage: %s: chain gap (predecessor through %d is missing)", path, m.prevSeq)
		}
		if i > 0 && m.prevSeq != prevSeq {
			return nil, nil, nil, fmt.Errorf("storage: %s: chain gap (prev %d, expected %d)", path, m.prevSeq, prevSeq)
		}
		prevSeq = m.seq
		chain = append(chain, m)
		paths = append(paths, path)
	}
	return chain, paths, stale, nil
}
