package storage

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"
)

// MemFS is an in-memory FS with crash semantics: every write lands in a
// pending view, and only Sync (for file contents) and SyncDir (for the
// directory namespace: creates, renames, removes) promote pending state
// to the durable view. Crash discards everything not yet promoted —
// optionally tearing the unsynced tail of a file mid-write and
// corrupting the last surviving byte, which models torn sector writes.
//
// It backs the crash-recovery chaos schedules: a workload runs against
// a TieredStore on a MemFS, the test calls Crash, reopens the store on
// the surviving state, and checks that no acknowledged update was lost.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	// dirs maps directory → the set of names durably linked in it.
	// Names present in files but not here vanish on Crash.
	dirs map[string]map[string]bool
	// TornWriter, when non-nil, decides how many of the n unsynced
	// bytes of a crashing file survive and whether the last surviving
	// byte is corrupted. The default keeps none.
	TornWriter func(path string, unsynced int) (keep int, corrupt bool)
	// FailWrites / FailSyncs / FailReads, when non-nil, make the
	// matching operations return that error — sticky fault injection
	// for fail-stop tests. Set them only while no operation is in
	// flight.
	FailWrites error
	FailSyncs  error
	FailReads  error
	// OpHook, when non-nil, runs at the start of every write, sync and
	// read-at; a non-nil return fails that operation. The chaos
	// schedules use it to fail the Nth disk touch of a run.
	OpHook func(op, path string) error
}

// hook consults OpHook and the per-kind sticky error; caller holds mu.
func (m *MemFS) hook(op, path string, sticky error) error {
	if m.OpHook != nil {
		if err := m.OpHook(op, path); err != nil {
			return err
		}
	}
	return sticky
}

type memFile struct {
	fs     *MemFS
	path   string
	data   []byte
	synced int // bytes of data known durable
	closed bool
	ronly  bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]map[string]bool)}
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{fs: m, path: name}
	m.files[name] = f
	return f, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("memfs: open %s: no such file", name)
	}
	return &memFile{fs: m, path: name, data: f.data, synced: f.synced, ronly: true}, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("memfs: rename %s: no such file", oldname)
	}
	delete(m.files, oldname)
	f.path = newname
	m.files[newname] = f
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("memfs: remove %s: no such file", name)
	}
	delete(m.files, name)
	return nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for path := range m.files {
		if filepath.Dir(path) == dir {
			names = append(names, filepath.Base(path))
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error { return nil }

// SyncDir implements FS: the current namespace of dir (which names
// exist, after creates/renames/removes) becomes durable.
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	durable := make(map[string]bool)
	for path := range m.files {
		if filepath.Dir(path) == dir {
			durable[filepath.Base(path)] = true
		}
	}
	m.dirs[dir] = durable
	return nil
}

// Crash simulates a power failure: unsynced file bytes are dropped
// (except a torn prefix chosen by TornWriter), and directory entries
// never made durable by SyncDir disappear. The MemFS remains usable —
// recovery code opens the surviving state in place.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for path, f := range m.files {
		if unsynced := len(f.data) - f.synced; unsynced > 0 {
			keep, corrupt := 0, false
			if m.TornWriter != nil {
				keep, corrupt = m.TornWriter(path, unsynced)
			}
			if keep > unsynced {
				keep = unsynced
			}
			f.data = f.data[:f.synced+keep]
			if corrupt && len(f.data) > f.synced {
				f.data[len(f.data)-1] ^= 0x80
			}
			f.synced = len(f.data)
		}
	}
	for path := range m.files {
		dir := filepath.Dir(path)
		durable, ok := m.dirs[dir]
		if !ok || !durable[filepath.Base(path)] {
			delete(m.files, path)
		}
	}
	// Durable names whose file object was replaced but not re-synced
	// keep their old content in real filesystems; modeling that
	// faithfully would need content snapshots per SyncDir. The WAL and
	// snapshot writers never reuse names, so "vanish" is the only
	// behavior renames need: a crash between Rename and SyncDir loses
	// the new name, which is exactly the bug class the parent-dir
	// fsync fix closes.
}

// Corrupt flips one bit at the given offset of the named file, for
// corrupt-tail recovery tests.
func (m *MemFS) Corrupt(name string, offset int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("memfs: corrupt %s: no such file", name)
	}
	if offset < 0 {
		offset += int64(len(f.data))
	}
	if offset < 0 || offset >= int64(len(f.data)) {
		return fmt.Errorf("memfs: corrupt %s: offset %d out of range", name, offset)
	}
	f.data[offset] ^= 0x40
	return nil
}

// Truncate cuts the named file to n bytes, for truncated-tail tests.
func (m *MemFS) Truncate(name string, n int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("memfs: truncate %s: no such file", name)
	}
	if n < 0 || n > int64(len(f.data)) {
		return fmt.Errorf("memfs: truncate %s: bad length %d", name, n)
	}
	f.data = f.data[:n]
	if f.synced > int(n) {
		f.synced = int(n)
	}
	return nil
}

// Files returns the paths currently visible, sorted.
func (m *MemFS) Files() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []string
	for path := range m.files {
		out = append(out, path)
	}
	sort.Strings(out)
	return out
}

// TotalBytes returns the summed visible size of all files.
func (m *MemFS) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, f := range m.files {
		n += int64(len(f.data))
	}
	return n
}

func (f *memFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed || f.ronly {
		return 0, fmt.Errorf("memfs: write %s: file closed or read-only", f.path)
	}
	if err := f.fs.hook("write", f.path, f.fs.FailWrites); err != nil {
		return 0, err
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if err := f.fs.hook("read", f.path, f.fs.FailReads); err != nil {
		return 0, err
	}
	// Read through to the live file object: a read-only handle opened
	// before a writer appended more data still sees the current
	// content, like a POSIX file description on the same inode.
	data := f.data
	if live, ok := f.fs.files[f.path]; ok {
		data = live.data
	}
	if off < 0 || off > int64(len(data)) {
		return 0, fmt.Errorf("memfs: read %s at %d: out of range", f.path, off)
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return fmt.Errorf("memfs: sync %s: file closed", f.path)
	}
	if err := f.fs.hook("sync", f.path, f.fs.FailSyncs); err != nil {
		return err
	}
	f.synced = len(f.data)
	return nil
}

func (f *memFile) Close() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	f.closed = true
	return nil
}

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	data := f.data
	if live, ok := f.fs.files[f.path]; ok {
		data = live.data
	}
	return int64(len(data)), nil
}

var _ FS = (*MemFS)(nil)
