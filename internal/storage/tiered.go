package storage

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// Options configures a TieredStore.
type Options struct {
	// Dir is the storage directory (WAL segments + snapshot files).
	Dir string
	// FS overrides the backing filesystem; nil means the OS.
	FS FS
	// Sync is the WAL fsync policy (default SyncBatch group commit).
	Sync SyncPolicy
	// SegmentBytes rotates WAL segments past this size (default 64 MiB).
	SegmentBytes int64
	// SnapshotEvery runs maintenance — delta snapshot, demotion,
	// possibly compaction — every this many appended records
	// (default 65536).
	SnapshotEvery int
	// HotWindow is how many seconds of sample time stay in memory:
	// samples older than the newest sample minus HotWindow demote to
	// the cold tier at the next maintenance (default 3600).
	HotWindow int64
	// MaxDeltas compacts the snapshot chain into one full file when it
	// grows past this many files (default 8).
	MaxDeltas int
	// ColdCacheEntries caps the decoded cold-run LRU (default 1024).
	ColdCacheEntries int
	// GridCell / GridBucket size the hot-tier spatio-temporal index,
	// like ts.Config (defaults 500 m / 900 s).
	GridCell   float64
	GridBucket int64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 65536
	}
	if o.HotWindow <= 0 {
		o.HotWindow = 3600
	}
	if o.MaxDeltas <= 0 {
		o.MaxDeltas = 8
	}
	if o.ColdCacheEntries <= 0 {
		o.ColdCacheEntries = 1024
	}
	if o.GridCell == 0 {
		o.GridCell = 500
	}
	if o.GridBucket == 0 {
		o.GridBucket = 900
	}
	return o
}

// RecoveryInfo reports what Open rebuilt.
type RecoveryInfo struct {
	// Duration is the wall time recovery took.
	Duration time.Duration
	// SnapshotFiles is the length of the live snapshot chain.
	SnapshotFiles int
	// ColdSamples and WarmSamples partition the chain's samples into
	// disk-resident and memory-reloaded.
	ColdSamples int
	WarmSamples int
	// Replayed counts WAL records applied on top of the chain;
	// SkippedWAL counts records the chain already covered.
	Replayed   int
	SkippedWAL int
	// TornTail is true when the final WAL segment ended in a torn or
	// short record, which recovery truncated away (TornBytes bytes).
	// Only unacknowledged records can be lost this way.
	TornTail  bool
	TornBytes int64
	// LastSeq is the WAL sequence recovery ended at.
	LastSeq uint64
}

// snapHandle is an open snapshot file.
type snapHandle struct {
	seq  uint64
	path string
	f    File
}

// coldRun locates one user run inside one open snapshot file.
type coldRun struct {
	file *snapHandle
	ref  runRef
}

// userTier is one user's in-memory state. The three tiers partition
// the user's samples exactly:
//
//	cold   on disk only — runs' prefixes with T < cut (all snapshotted)
//	warm   in memory and snapshotted — always T >= cut
//	fresh  in memory, not yet in any snapshot — any T
//
// The stable k-way merge (runs in chain order, then warm, then fresh)
// reproduces the exact sample order an all-hot phl.History would hold:
// within a run samples are time-sorted with arrival-order ties; across
// runs, and between runs and memory, an equal-T sample in an earlier
// source always arrived earlier (it was snapshotted earlier).
type userTier struct {
	warm  *phl.History
	fresh *phl.History
	runs  []coldRun
}

// TieredStore is the durable hot/cold PHL store: it implements both
// phl.Storer and stindex.Index, so the trusted server can use one
// object as its store and spatio-temporal index, keeping demotion
// invisible to Algorithm 1. All methods are safe for concurrent use.
type TieredStore struct {
	opts Options
	fs   FS
	wal  *WAL

	mu      sync.RWMutex
	users   map[phl.UserID]*userTier
	order   []phl.UserID
	hotIdx  stindex.Index
	cut     int64 // T < cut is cold; advances at maintenance
	maxT    int64
	haveT   bool
	hot     int    // warm+fresh samples
	cold    int    // disk-only samples
	freshN  int    // unsnapshotted samples (triggers maintenance)
	snapSeq uint64 // WAL watermark the snapshot chain covers
	chain   []*snapHandle
	cache   *runCache

	recovery RecoveryInfo

	snapsFull  atomic.Int64
	snapsDelta atomic.Int64
	snapErrs   atomic.Int64
	demotions  atomic.Int64
	demoted    atomic.Int64
	coldHits   atomic.Int64
	coldMisses atomic.Int64
	coldErrs   atomic.Int64
	faults     atomic.Int64
	walFailed  atomic.Bool
}

var (
	_ phl.Storer    = (*TieredStore)(nil)
	_ stindex.Index = (*TieredStore)(nil)
)

// Open recovers (or initializes) a TieredStore from its directory:
// load + verify the snapshot chain, replay the WAL tail, truncate a
// torn final record, and start a fresh WAL segment. Any verification
// failure other than a torn tail refuses recovery — booting on a
// silently partial PHL would weaken every anonymity set computed over
// it.
func Open(opts Options) (*TieredStore, *RecoveryInfo, error) {
	start := time.Now()
	opts = opts.withDefaults()
	fsys := opts.FS
	if err := fsys.MkdirAll(opts.Dir); err != nil {
		return nil, nil, err
	}
	chain, paths, stale, err := loadSnapshotChain(fsys, opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	t := &TieredStore{
		opts:   opts,
		fs:     fsys,
		users:  make(map[phl.UserID]*userTier),
		hotIdx: stindex.NewGrid(opts.GridCell, opts.GridBucket),
		cut:    math.MinInt64,
		cache:  newRunCache(opts.ColdCacheEntries),
	}
	// Superseded files (older than the newest full snapshot) and
	// leftover temp files are garbage; failing to delete them is not
	// fatal, the next boot retries.
	for _, p := range stale {
		_ = fsys.Remove(p)
	}
	if len(stale) > 0 {
		_ = fsys.SyncDir(opts.Dir)
	}

	// Pass 1: catalog every run, reconstruct first-seen user order,
	// and find the newest sample time.
	for i, m := range chain {
		h := &snapHandle{seq: m.seq, path: paths[i]}
		f, err := fsys.Open(paths[i])
		if err != nil {
			return nil, nil, err
		}
		h.f = f
		t.chain = append(t.chain, h)
		for _, ref := range m.runs {
			tier := t.tier(ref.user)
			tier.runs = append(tier.runs, coldRun{file: h, ref: ref})
			t.cold += ref.count
			if !t.haveT || ref.maxT > t.maxT {
				t.maxT, t.haveT = ref.maxT, true
			}
		}
		t.snapSeq = m.seq
	}

	// Pass 2: replay the WAL tail into the fresh tier.
	info, err := replayWAL(fsys, opts.Dir, t.snapSeq, func(seq uint64, u phl.UserID, p geo.STPoint) error {
		tier := t.tier(u)
		if tier.fresh == nil {
			tier.fresh = &phl.History{}
		}
		tier.fresh.Append(p)
		t.freshN++
		t.hot++
		if !t.haveT || p.T > t.maxT {
			t.maxT, t.haveT = p.T, true
		}
		return nil
	})
	if err != nil {
		t.closeFiles()
		return nil, nil, err
	}
	if info.tornTail {
		if err := t.truncateTornTail(info); err != nil {
			t.closeFiles()
			return nil, nil, err
		}
	}

	// Pass 3: the hot window is now known; decode every run that
	// reaches into it and reload its warm suffix.
	if t.haveT {
		t.cut = t.maxT - opts.HotWindow
	}
	warmLoaded := 0
	for _, u := range t.order {
		tier := t.users[u]
		for _, run := range tier.runs {
			if run.ref.maxT < t.cut {
				continue
			}
			pts, err := t.readRun(run)
			if err != nil {
				t.closeFiles()
				return nil, nil, fmt.Errorf("storage: recovery: %v", err)
			}
			suffix := pts[sort.Search(len(pts), func(i int) bool { return pts[i].T >= t.cut }):]
			if len(suffix) == 0 {
				continue
			}
			cp := make([]geo.STPoint, len(suffix))
			copy(cp, suffix)
			if tier.warm == nil {
				tier.warm = phl.HistoryFromPoints(cp)
			} else {
				tier.warm = phl.HistoryFromPoints(mergePts(tier.warm.Points(), cp))
			}
			warmLoaded += len(cp)
			t.cold -= len(cp)
			t.hot += len(cp)
		}
	}
	t.rebuildIndexLocked()

	lastSeq := t.snapSeq
	if info.lastSeq > lastSeq {
		lastSeq = info.lastSeq
	}
	live := info.segments[:0]
	for _, first := range info.segments {
		if first <= lastSeq {
			live = append(live, first)
		}
	}
	w, err := openWAL(fsys, opts.Dir, opts.Sync, opts.SegmentBytes, lastSeq, live)
	if err != nil {
		t.closeFiles()
		return nil, nil, err
	}
	t.wal = w

	t.recovery = RecoveryInfo{
		Duration:      time.Since(start),
		SnapshotFiles: len(t.chain),
		ColdSamples:   t.cold,
		WarmSamples:   warmLoaded,
		Replayed:      info.replayed,
		SkippedWAL:    info.skipped,
		TornTail:      info.tornTail,
		TornBytes:     info.tornBytes,
		LastSeq:       lastSeq,
	}
	ri := t.recovery
	return t, &ri, nil
}

// truncateTornTail rewrites the final WAL segment without its torn
// bytes (atomically: temp + sync + rename + dir sync), so the next
// recovery does not mistake the old tear for mid-file corruption.
func (t *TieredStore) truncateTornTail(info walReplayInfo) error {
	if len(info.segments) == 0 {
		return nil
	}
	first := info.segments[len(info.segments)-1]
	path := join(t.opts.Dir, walSegmentName(first))
	f, err := t.fs.Open(path)
	if err != nil {
		return err
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		return err
	}
	good := size - info.tornBytes
	data := make([]byte, good)
	if good > 0 {
		if n, err := f.ReadAt(data, 0); int64(n) != good {
			f.Close()
			return fmt.Errorf("storage: short read truncating %s: %v", path, err)
		}
	}
	f.Close()
	if good < walHeaderLen {
		// Nothing but a torn header: the segment holds no records.
		if err := t.fs.Remove(path); err != nil {
			return err
		}
		return t.fs.SyncDir(t.opts.Dir)
	}
	tmp := path + ".tmp"
	nf, err := t.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := nf.Write(data); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Sync(); err != nil {
		nf.Close()
		return err
	}
	if err := nf.Close(); err != nil {
		return err
	}
	if err := t.fs.Rename(tmp, path); err != nil {
		return err
	}
	return t.fs.SyncDir(t.opts.Dir)
}

// tier returns (creating if needed) the user's tier entry; caller holds
// t.mu or is single-threaded recovery.
func (t *TieredStore) tier(u phl.UserID) *userTier {
	tier, ok := t.users[u]
	if !ok {
		tier = &userTier{}
		t.users[u] = tier
		t.order = append(t.order, u)
	}
	return tier
}

func (t *TieredStore) closeFiles() {
	for _, h := range t.chain {
		if h.f != nil {
			h.f.Close()
		}
	}
}

// noteWALFailure latches the fail-stop state; the first failure also
// counts as a storage fault so in-flight requests suppress.
func (t *TieredStore) noteWALFailure() {
	if t.walFailed.CompareAndSwap(false, true) {
		t.faults.Add(1)
	}
}

// Record implements phl.Storer: WAL append, then the in-memory fresh
// tier, then (per the sync policy) a group-commit fsync. The update is
// acknowledged durable only when Record returns with the store not
// failed; after a WAL error the sample still lands in memory so reads
// stay coherent, but the store reports StorageFailed and the server
// suppresses.
func (t *TieredStore) Record(u phl.UserID, p geo.STPoint) {
	t.mu.Lock()
	seq, err := t.wal.Append(u, p)
	tier := t.tier(u)
	if tier.fresh == nil {
		tier.fresh = &phl.History{}
	}
	tier.fresh.Append(p)
	t.freshN++
	t.hot++
	if !t.haveT || p.T > t.maxT {
		t.maxT, t.haveT = p.T, true
	}
	maintain := err == nil && t.freshN >= t.opts.SnapshotEvery
	if maintain {
		t.maintainLocked()
	}
	t.mu.Unlock()
	if err != nil {
		t.noteWALFailure()
		return
	}
	if err := t.wal.Commit(seq); err != nil {
		t.noteWALFailure()
	}
}

// maintainLocked runs one maintenance cycle under t.mu: delta-snapshot
// the fresh tier, merge it into warm, advance the demotion watermark,
// drop newly cold samples from memory, rebuild the hot index, compact
// when the chain is long, and prune covered WAL segments.
func (t *TieredStore) maintainLocked() {
	upTo := t.wal.LastSeq() // every record <= upTo is in the tiers (appends happen under t.mu)
	if t.freshN > 0 {
		var runs []userRun
		for _, u := range t.order {
			tier := t.users[u]
			if tier.fresh == nil || tier.fresh.Len() == 0 {
				continue
			}
			runs = append(runs, userRun{user: u, pts: tier.fresh.Points()})
		}
		img := encodeSnapshot(snapDelta, upTo, t.snapSeq, runs)
		path, err := writeSnapshotFile(t.fs, t.opts.Dir, snapDelta, upTo, img)
		if err != nil {
			// The chain is unchanged; fresh samples stay in memory and
			// the WAL still covers them. Count it and retry at the
			// next maintenance.
			t.snapErrs.Add(1)
			return
		}
		meta, err := decodeSnapshot(img)
		if err != nil {
			// The writer produced an unreadable image: a bug, not an
			// environment fault. Fail loudly in tests, degrade in
			// production.
			t.snapErrs.Add(1)
			t.faults.Add(1)
			return
		}
		f, err := t.fs.Open(path)
		if err != nil {
			t.snapErrs.Add(1)
			t.faults.Add(1)
			return
		}
		h := &snapHandle{seq: upTo, path: path, f: f}
		t.chain = append(t.chain, h)
		for _, ref := range meta.runs {
			tier := t.users[ref.user]
			tier.runs = append(tier.runs, coldRun{file: h, ref: ref})
		}
		t.snapSeq = upTo
		t.snapsDelta.Add(1)
		// Everything in memory is now snapshotted: fold fresh into
		// warm (warm samples always arrived before the previous
		// snapshot, so warm wins ties).
		for _, u := range t.order {
			tier := t.users[u]
			if tier.fresh == nil || tier.fresh.Len() == 0 {
				continue
			}
			if tier.warm == nil || tier.warm.Len() == 0 {
				tier.warm = tier.fresh
			} else {
				tier.warm = phl.HistoryFromPoints(mergePts(tier.warm.Points(), tier.fresh.Points()))
			}
			tier.fresh = nil
		}
		t.freshN = 0
	}

	// Demote: advance the watermark and drop the now-cold prefix of
	// every warm history. Every dropped sample is in the chain (fresh
	// was folded above), so memory is the only thing released.
	if t.haveT {
		if newCut := t.maxT - t.opts.HotWindow; newCut > t.cut {
			t.cut = newCut
		}
	}
	droppedAny := false
	droppedSamples := 0
	for _, u := range t.order {
		tier := t.users[u]
		if tier.warm == nil || tier.warm.Len() == 0 {
			continue
		}
		pts := tier.warm.Points()
		idx := sort.Search(len(pts), func(i int) bool { return pts[i].T >= t.cut })
		if idx == 0 {
			continue
		}
		droppedAny = true
		droppedSamples += idx
		if idx == len(pts) {
			tier.warm = nil
		} else {
			cp := make([]geo.STPoint, len(pts)-idx)
			copy(cp, pts[idx:])
			tier.warm = phl.HistoryFromPoints(cp)
		}
	}
	if droppedSamples > 0 {
		t.hot -= droppedSamples
		t.cold += droppedSamples
		t.demotions.Add(1)
		t.demoted.Add(int64(droppedSamples))
	}
	if droppedAny {
		t.rebuildIndexLocked()
	}

	if len(t.chain) > t.opts.MaxDeltas {
		t.compactLocked()
	}
	_ = t.wal.Prune(t.snapSeq)
}

// compactLocked rewrites the whole snapshot chain as one full file and
// deletes the superseded files. Caller holds t.mu.
func (t *TieredStore) compactLocked() {
	var runs []userRun
	for _, u := range t.order {
		tier := t.users[u]
		if len(tier.runs) == 0 {
			continue
		}
		var all []geo.STPoint
		for _, run := range tier.runs {
			pts, err := t.readRunNoCache(run)
			if err != nil {
				// A compaction that cannot read its inputs must not
				// rewrite the chain; the old files stay live.
				t.snapErrs.Add(1)
				return
			}
			if all == nil {
				all = pts
			} else {
				all = mergePts(all, pts)
			}
		}
		runs = append(runs, userRun{user: u, pts: all})
	}
	img := encodeSnapshot(snapFull, t.snapSeq, 0, runs)
	path, err := writeSnapshotFile(t.fs, t.opts.Dir, snapFull, t.snapSeq, img)
	if err != nil {
		t.snapErrs.Add(1)
		return
	}
	meta, err := decodeSnapshot(img)
	if err != nil {
		t.snapErrs.Add(1)
		t.faults.Add(1)
		return
	}
	f, err := t.fs.Open(path)
	if err != nil {
		t.snapErrs.Add(1)
		t.faults.Add(1)
		return
	}
	h := &snapHandle{seq: t.snapSeq, path: path, f: f}
	old := t.chain
	t.chain = []*snapHandle{h}
	for _, u := range t.order {
		t.users[u].runs = nil
	}
	for _, ref := range meta.runs {
		tier := t.users[ref.user]
		tier.runs = append(tier.runs, coldRun{file: h, ref: ref})
	}
	for _, oh := range old {
		if oh.f != nil {
			oh.f.Close()
		}
		_ = t.fs.Remove(oh.path)
	}
	_ = t.fs.SyncDir(t.opts.Dir)
	t.cache.drop()
	t.snapsFull.Add(1)
}

// rebuildIndexLocked rebuilds the hot grid from the in-memory tiers.
// Caller holds t.mu (write), which excludes concurrent Insert readers.
func (t *TieredStore) rebuildIndexLocked() {
	idx := stindex.NewGrid(t.opts.GridCell, t.opts.GridBucket)
	for _, u := range t.order {
		tier := t.users[u]
		if tier.warm != nil {
			for _, p := range tier.warm.Points() {
				idx.Insert(u, p)
			}
		}
		if tier.fresh != nil {
			for _, p := range tier.fresh.Points() {
				idx.Insert(u, p)
			}
		}
	}
	t.hotIdx = idx
}

// Checkpoint forces a maintenance cycle (delta snapshot + demotion +
// WAL prune), so a clean shutdown recovers from snapshots alone.
func (t *TieredStore) Checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.wal.Err(); err != nil {
		return err
	}
	t.maintainLocked()
	if n := t.snapErrs.Load(); n > 0 {
		return fmt.Errorf("storage: checkpoint: %d snapshot errors (see stats)", n)
	}
	return nil
}

// Close checkpoints and closes the WAL and snapshot files.
func (t *TieredStore) Close() error {
	err := t.Checkpoint()
	if werr := t.wal.Close(); err == nil {
		err = werr
	}
	t.mu.Lock()
	t.closeFiles()
	t.mu.Unlock()
	return err
}

// readRun returns a run's samples through the LRU cache.
func (t *TieredStore) readRun(run coldRun) ([]geo.STPoint, error) {
	key := runKey{seq: run.file.seq, user: run.ref.user}
	if pts, ok := t.cache.get(key); ok {
		t.coldHits.Add(1)
		return pts, nil
	}
	pts, err := t.readRunNoCache(run)
	if err != nil {
		return nil, err
	}
	t.coldMisses.Add(1)
	t.cache.put(key, pts)
	return pts, nil
}

// readRunNoCache reads and verifies a run from disk. Errors count as
// storage faults: the caller's query is now computed over a partial
// PHL, and the server degrades it to suppression.
func (t *TieredStore) readRunNoCache(run coldRun) ([]geo.STPoint, error) {
	buf := make([]byte, run.ref.length)
	n, err := run.file.f.ReadAt(buf, run.ref.offset)
	if int64(n) != run.ref.length {
		t.coldErrs.Add(1)
		t.faults.Add(1)
		return nil, fmt.Errorf("storage: cold read %s user %v: %v", run.file.path, run.ref.user, err)
	}
	pts, err := decodeRun(buf, run.ref)
	if err != nil {
		t.coldErrs.Add(1)
		t.faults.Add(1)
		return nil, err
	}
	return pts, nil
}

// mergePts stably merges two time-sorted sample runs; on equal T the
// left (earlier-arrived) side wins. Folding mergePts over sources in
// arrival-priority order reproduces the all-hot insertion order.
func mergePts(a, b []geo.STPoint) []geo.STPoint {
	out := make([]geo.STPoint, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i].T <= b[j].T {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// coldPrefix returns the run's samples with T < cut (the part not
// duplicated by the warm tier).
func coldPrefix(pts []geo.STPoint, cut int64) []geo.STPoint {
	return pts[:sort.Search(len(pts), func(i int) bool { return pts[i].T >= cut })]
}

// History implements phl.Storer: the user's full history, cold and hot
// tiers merged into the exact all-hot sample order. When the user has
// no cold samples the in-memory history is returned without copying.
// On a cold read error the result silently omits the unreadable run —
// and the fault counter moves, so the server suppresses any decision
// derived from it.
func (t *TieredStore) History(u phl.UserID) *phl.History {
	t.mu.RLock()
	defer t.mu.RUnlock()
	tier, ok := t.users[u]
	if !ok {
		return nil
	}
	var coldParts [][]geo.STPoint
	for _, run := range tier.runs {
		if run.ref.minT >= t.cut {
			continue
		}
		pts, err := t.readRun(run)
		if err != nil {
			continue // fault counted; fail-closed upstream
		}
		if pre := coldPrefix(pts, t.cut); len(pre) > 0 {
			coldParts = append(coldParts, pre)
		}
	}
	if len(coldParts) == 0 {
		switch {
		case tier.warm == nil || tier.warm.Len() == 0:
			if tier.fresh == nil {
				return &phl.History{}
			}
			return tier.fresh
		case tier.fresh == nil || tier.fresh.Len() == 0:
			return tier.warm
		}
	}
	var merged []geo.STPoint
	for _, part := range coldParts {
		if merged == nil {
			merged = append([]geo.STPoint(nil), part...)
		} else {
			merged = mergePts(merged, part)
		}
	}
	if tier.warm != nil && tier.warm.Len() > 0 {
		if merged == nil {
			merged = append([]geo.STPoint(nil), tier.warm.Points()...)
		} else {
			merged = mergePts(merged, tier.warm.Points())
		}
	}
	if tier.fresh != nil && tier.fresh.Len() > 0 {
		if merged == nil {
			merged = append([]geo.STPoint(nil), tier.fresh.Points()...)
		} else {
			merged = mergePts(merged, tier.fresh.Points())
		}
	}
	return phl.HistoryFromPoints(merged)
}

// anyInLocked reports whether the user has a sample in the box, across
// all tiers; caller holds t.mu (read).
func (t *TieredStore) anyInLocked(tier *userTier, b geo.STBox) bool {
	if tier.fresh != nil && tier.fresh.AnyIn(b) {
		return true
	}
	if tier.warm != nil && tier.warm.AnyIn(b) {
		return true
	}
	if b.Time.Start >= t.cut {
		return false // the cold tier is entirely below the watermark
	}
	for _, run := range tier.runs {
		if run.ref.minT >= t.cut || run.ref.minT > b.Time.End {
			continue
		}
		effMax := run.ref.maxT
		if effMax >= t.cut {
			effMax = t.cut - 1
		}
		if effMax < b.Time.Start || !b.Area.Intersects(run.ref.bbox) {
			continue
		}
		pts, err := t.readRun(run)
		if err != nil {
			continue // fault counted; fail-closed upstream
		}
		if phl.HistoryFromPoints(coldPrefix(pts, t.cut)).AnyIn(b) {
			return true
		}
	}
	return false
}

// Users implements phl.Storer.
func (t *TieredStore) Users() []phl.UserID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]phl.UserID, len(t.order))
	copy(out, t.order)
	return out
}

// NumUsers implements phl.Storer.
func (t *TieredStore) NumUsers() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.order)
}

// NumSamples implements phl.Storer.
func (t *TieredStore) NumSamples() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.hot + t.cold
}

// UsersIn implements phl.Storer.
func (t *TieredStore) UsersIn(b geo.STBox) []phl.UserID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []phl.UserID
	for _, u := range t.order {
		if t.anyInLocked(t.users[u], b) {
			out = append(out, u)
		}
	}
	return out
}

// CountUsersIn implements phl.Storer.
func (t *TieredStore) CountUsersIn(b geo.STBox) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, u := range t.order {
		if t.anyInLocked(t.users[u], b) {
			n++
		}
	}
	return n
}

// LTConsistentUsers implements phl.Storer.
func (t *TieredStore) LTConsistentUsers(boxes []geo.STBox) []phl.UserID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []phl.UserID
	for _, u := range t.order {
		tier := t.users[u]
		ok := true
		for _, b := range boxes {
			if !t.anyInLocked(tier, b) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, u)
		}
	}
	return out
}

// Insert implements stindex.Index: samples enter the hot grid only
// (Record already made them durable; the cold tier serves what the
// grid no longer holds). The read lock pins the grid across a
// concurrent rebuild.
func (t *TieredStore) Insert(u phl.UserID, p geo.STPoint) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.hotIdx.Insert(u, p)
}

// Len implements stindex.Index: all samples, hot and cold.
func (t *TieredStore) Len() int { return t.NumSamples() }

// UsersInBox implements stindex.Index.
func (t *TieredStore) UsersInBox(b geo.STBox) []phl.UserID { return t.UsersIn(b) }

// CountUsersInBox implements stindex.Index.
func (t *TieredStore) CountUsersInBox(b geo.STBox) int { return t.CountUsersIn(b) }

// KNearestUsers implements stindex.Index: the hot grid's answer,
// augmented with cold candidates whose catalog bounding boxes the
// metric cannot rule out. Exact whenever no two candidate users sit at
// exactly equal distance (ties may swap which equal-distance witness
// is reported — the anonymity level is unaffected).
func (t *TieredStore) KNearestUsers(q geo.STPoint, k int, m geo.STMetric, exclude map[phl.UserID]bool) []stindex.UserPoint {
	if k <= 0 {
		return nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	hot := t.hotIdx.KNearestUsers(q, k, m, exclude)
	type cand struct {
		p geo.STPoint
		d float64
	}
	cands := make(map[phl.UserID]cand, len(hot))
	for _, up := range hot {
		cands[up.User] = cand{p: up.Point, d: m.Dist(q, up.Point)}
	}
	// bound is the kth-smallest known candidate distance: a valid
	// pruning radius because the final kth distance can only be
	// smaller. Recomputed lazily after improvements.
	boundValid := false
	var bound float64
	kthBound := func() float64 {
		if !boundValid {
			if len(cands) < k {
				bound = math.Inf(1)
			} else {
				ds := make([]float64, 0, len(cands))
				for _, c := range cands {
					ds = append(ds, c.d)
				}
				sort.Float64s(ds)
				bound = ds[k-1]
			}
			boundValid = true
		}
		return bound
	}
	for _, u := range t.order {
		if exclude != nil && exclude[u] {
			continue
		}
		tier := t.users[u]
		if len(tier.runs) == 0 {
			continue
		}
		best := math.Inf(1)
		if c, ok := cands[u]; ok {
			best = c.d
		}
		for _, run := range tier.runs {
			if run.ref.minT >= t.cut {
				continue
			}
			effMax := run.ref.maxT
			if effMax >= t.cut {
				effMax = t.cut - 1
			}
			runBox := geo.STBox{Area: run.ref.bbox, Time: geo.Interval{Start: run.ref.minT, End: effMax}}
			lb := m.DistToBox(q, runBox)
			if lb >= best || lb >= kthBound() {
				continue
			}
			pts, err := t.readRun(run)
			if err != nil {
				continue // fault counted; fail-closed upstream
			}
			pre := coldPrefix(pts, t.cut)
			if len(pre) == 0 {
				continue
			}
			if p, d, ok := phl.HistoryFromPoints(pre).Closest(q, m); ok && d < best {
				best = d
				cands[u] = cand{p: p, d: d}
				boundValid = false
			}
		}
	}
	out := make([]stindex.UserPoint, 0, len(cands))
	type scored struct {
		u phl.UserID
		c cand
	}
	all := make([]scored, 0, len(cands))
	for u, c := range cands {
		all = append(all, scored{u, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c.d != all[j].c.d {
			return all[i].c.d < all[j].c.d
		}
		return all[i].u < all[j].u
	})
	if len(all) > k {
		all = all[:k]
	}
	for _, s := range all {
		out = append(out, stindex.UserPoint{User: s.u, Point: s.c.p})
	}
	return out
}

// StorageFaults implements ts.FaultyStorage.
func (t *TieredStore) StorageFaults() int64 { return t.faults.Load() }

// StorageFailed implements ts.FaultyStorage.
func (t *TieredStore) StorageFailed() bool { return t.walFailed.Load() }

// Recovery returns what Open rebuilt.
func (t *TieredStore) Recovery() RecoveryInfo { return t.recovery }

// Stats is a point-in-time snapshot of the store's counters, feeding
// the histanon_storage_* metric families and the /healthz storage
// section.
type Stats struct {
	WALAppends     int64
	WALFsyncs      int64
	WALBytes       int64
	WALErrors      int64
	WALLag         int64
	SnapshotsFull  int64
	SnapshotsDelta int64
	SnapshotErrors int64
	Demotions      int64
	DemotedSamples int64
	ColdHits       int64
	ColdMisses     int64
	ColdErrors     int64
	HotSamples     int
	ColdSamples    int
	ChainFiles     int
	CacheEntries   int
	Failed         bool
}

// Stats returns current counters.
func (t *TieredStore) Stats() Stats {
	t.mu.RLock()
	hot, cold, chainLen := t.hot, t.cold, len(t.chain)
	t.mu.RUnlock()
	return Stats{
		WALAppends:     t.wal.appends.Load(),
		WALFsyncs:      t.wal.fsyncs.Load(),
		WALBytes:       t.wal.bytes.Load(),
		WALErrors:      t.wal.errs.Load(),
		WALLag:         t.wal.Lag(),
		SnapshotsFull:  t.snapsFull.Load(),
		SnapshotsDelta: t.snapsDelta.Load(),
		SnapshotErrors: t.snapErrs.Load(),
		Demotions:      t.demotions.Load(),
		DemotedSamples: t.demoted.Load(),
		ColdHits:       t.coldHits.Load(),
		ColdMisses:     t.coldMisses.Load(),
		ColdErrors:     t.coldErrs.Load(),
		HotSamples:     hot,
		ColdSamples:    cold,
		ChainFiles:     chainLen,
		CacheEntries:   t.cache.len(),
		Failed:         t.walFailed.Load(),
	}
}

// WriteSnapshot renders the full PHL in the phl package's flat
// snapshot format — the operator escape hatch behind the server's
// WritePHLSnapshot (and the -snapshot flag's restore path). It
// materializes every history, so prefer Checkpoint for routine
// durability.
func (t *TieredStore) WriteSnapshot(w io.Writer) error {
	faults0 := t.faults.Load()
	clone := phl.NewStore()
	for _, u := range t.Users() {
		h := t.History(u)
		if h == nil {
			continue
		}
		for _, p := range h.Points() {
			clone.Record(u, p)
		}
	}
	if t.faults.Load() != faults0 {
		return fmt.Errorf("storage: cold read errors while materializing snapshot")
	}
	return clone.WriteSnapshot(w)
}
