package storage

import (
	"math/rand"
	"strings"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

func randRuns(rng *rand.Rand, users, per int) []userRun {
	var runs []userRun
	for u := 0; u < users; u++ {
		pts := make([]geo.STPoint, 0, per)
		t := int64(rng.Intn(1000))
		for i := 0; i < per; i++ {
			t += int64(rng.Intn(30))
			pts = append(pts, geo.STPoint{
				P: geo.Point{X: rng.Float64() * 1e4, Y: rng.Float64() * 1e4},
				T: t,
			})
		}
		runs = append(runs, userRun{user: phl.UserID(u), pts: pts})
	}
	return runs
}

func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	runs := randRuns(rng, 20, 50)
	img := encodeSnapshot(snapDelta, 777, 123, runs)
	meta, err := decodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if meta.kind != snapDelta || meta.seq != 777 || meta.prevSeq != 123 {
		t.Fatalf("meta = %+v", meta)
	}
	if len(meta.runs) != len(runs) {
		t.Fatalf("%d runs, want %d", len(meta.runs), len(runs))
	}
	for i, ref := range meta.runs {
		if ref.user != runs[i].user || ref.count != len(runs[i].pts) {
			t.Fatalf("run %d ref = %+v", i, ref)
		}
		pts, err := decodeRun(img[ref.offset:ref.offset+ref.length], ref)
		if err != nil {
			t.Fatalf("decodeRun %d: %v", i, err)
		}
		for j, p := range pts {
			if p != runs[i].pts[j] {
				t.Fatalf("run %d sample %d = %+v, want %+v", i, j, p, runs[i].pts[j])
			}
		}
	}
}

func TestSnapshotEmptyRunsSkipped(t *testing.T) {
	runs := []userRun{
		{user: 1, pts: nil},
		{user: 2, pts: []geo.STPoint{{P: geo.Point{X: 1, Y: 2}, T: 3}}},
	}
	img := encodeSnapshot(snapFull, 9, 0, runs)
	meta, err := decodeSnapshot(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.runs) != 1 || meta.runs[0].user != 2 {
		t.Fatalf("runs = %+v", meta.runs)
	}
}

func TestSnapshotCorruptionDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	img := encodeSnapshot(snapFull, 5, 0, randRuns(rng, 5, 20))
	// Flip every byte position in a sparse sample of offsets: decode
	// must fail or (for run-body damage) decodeRun must fail later.
	for off := 0; off < len(img); off += 13 {
		bad := append([]byte(nil), img...)
		bad[off] ^= 0x10
		meta, err := decodeSnapshot(bad)
		if err != nil {
			continue // whole-file or header CRC caught it
		}
		caught := false
		for _, ref := range meta.runs {
			if _, err := decodeRun(bad[ref.offset:ref.offset+ref.length], ref); err != nil {
				caught = true
			}
		}
		if !caught {
			t.Fatalf("corruption at offset %d slipped through", off)
		}
	}
}

func TestSnapshotTruncationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	img := encodeSnapshot(snapFull, 5, 0, randRuns(rng, 5, 20))
	for cut := 0; cut < len(img); cut += 97 {
		if _, err := decodeSnapshot(img[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
}

func TestSnapshotChainLoad(t *testing.T) {
	fsys := NewMemFS()
	dir := "snap"
	rng := rand.New(rand.NewSource(4))

	img1 := encodeSnapshot(snapFull, 100, 0, randRuns(rng, 3, 10))
	if _, err := writeSnapshotFile(fsys, dir, snapFull, 100, img1); err != nil {
		t.Fatal(err)
	}
	img2 := encodeSnapshot(snapDelta, 200, 100, randRuns(rng, 3, 10))
	if _, err := writeSnapshotFile(fsys, dir, snapDelta, 200, img2); err != nil {
		t.Fatal(err)
	}
	img3 := encodeSnapshot(snapDelta, 300, 200, randRuns(rng, 3, 10))
	if _, err := writeSnapshotFile(fsys, dir, snapDelta, 300, img3); err != nil {
		t.Fatal(err)
	}

	chain, paths, stale, err := loadSnapshotChain(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || len(paths) != 3 || len(stale) != 0 {
		t.Fatalf("chain %d paths %d stale %d", len(chain), len(paths), len(stale))
	}
	if chain[0].seq != 100 || chain[1].seq != 200 || chain[2].seq != 300 {
		t.Fatalf("chain seqs %d %d %d", chain[0].seq, chain[1].seq, chain[2].seq)
	}
}

func TestSnapshotChainGapRefuses(t *testing.T) {
	fsys := NewMemFS()
	dir := "snap"
	rng := rand.New(rand.NewSource(5))
	for _, s := range []struct {
		kind         snapKind
		seq, prevSeq uint64
	}{{snapFull, 100, 0}, {snapDelta, 200, 100}, {snapDelta, 300, 200}} {
		img := encodeSnapshot(s.kind, s.seq, s.prevSeq, randRuns(rng, 2, 5))
		if _, err := writeSnapshotFile(fsys, dir, s.kind, s.seq, img); err != nil {
			t.Fatal(err)
		}
	}
	// Remove the middle delta: the chain now has a hole.
	if err := fsys.Remove(join(dir, snapshotName(snapDelta, 200))); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadSnapshotChain(fsys, dir); err == nil || !strings.Contains(err.Error(), "chain") {
		t.Fatalf("expected chain gap error, got %v", err)
	}
}

func TestSnapshotChainStaleAndTmpFiles(t *testing.T) {
	fsys := NewMemFS()
	dir := "snap"
	rng := rand.New(rand.NewSource(6))
	// An old full + delta, then a newer full that supersedes both, plus
	// a leftover temp file from a crashed writer.
	imgOldFull := encodeSnapshot(snapFull, 50, 0, randRuns(rng, 2, 5))
	if _, err := writeSnapshotFile(fsys, dir, snapFull, 50, imgOldFull); err != nil {
		t.Fatal(err)
	}
	imgOldDelta := encodeSnapshot(snapDelta, 80, 50, randRuns(rng, 2, 5))
	if _, err := writeSnapshotFile(fsys, dir, snapDelta, 80, imgOldDelta); err != nil {
		t.Fatal(err)
	}
	imgNewFull := encodeSnapshot(snapFull, 90, 0, randRuns(rng, 2, 5))
	if _, err := writeSnapshotFile(fsys, dir, snapFull, 90, imgNewFull); err != nil {
		t.Fatal(err)
	}
	tmp, err := fsys.Create(join(dir, snapshotName(snapDelta, 95)+".tmp"))
	if err != nil {
		t.Fatal(err)
	}
	tmp.Write([]byte("partial"))
	tmp.Close()

	chain, _, stale, err := loadSnapshotChain(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].seq != 90 {
		t.Fatalf("chain = %d files, first seq %d; want the newest full only", len(chain), chain[0].seq)
	}
	if len(stale) != 3 {
		t.Fatalf("stale = %d files, want 3 (old full, old delta, tmp)", len(stale))
	}
}

// A crash between writing a snapshot temp file and the directory sync
// must leave the previous chain intact and loadable.
func TestSnapshotCrashBeforeRenameKeepsOldChain(t *testing.T) {
	fsys := NewMemFS()
	dir := "snap"
	rng := rand.New(rand.NewSource(7))
	img := encodeSnapshot(snapFull, 10, 0, randRuns(rng, 2, 5))
	if _, err := writeSnapshotFile(fsys, dir, snapFull, 10, img); err != nil {
		t.Fatal(err)
	}
	// Start writing the next delta but crash before it is durable.
	tmp, _ := fsys.Create(join(dir, snapshotName(snapDelta, 20)+".tmp"))
	img2 := encodeSnapshot(snapDelta, 20, 10, randRuns(rng, 2, 5))
	tmp.Write(img2[:len(img2)/2])
	fsys.Crash()
	chain, _, _, err := loadSnapshotChain(fsys, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 || chain[0].seq != 10 {
		t.Fatalf("old chain lost: %d files", len(chain))
	}
}

func TestSnapshotFirstDeltaMustFollowFull(t *testing.T) {
	fsys := NewMemFS()
	dir := "snap"
	rng := rand.New(rand.NewSource(8))
	// A delta whose prevSeq is non-zero with no full file before it.
	img := encodeSnapshot(snapDelta, 200, 100, randRuns(rng, 2, 5))
	if _, err := writeSnapshotFile(fsys, dir, snapDelta, 200, img); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := loadSnapshotChain(fsys, dir); err == nil {
		t.Fatal("orphan delta accepted as a chain")
	}
}
