package storage

import (
	"sync"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// runKey identifies one decoded cold run: a (snapshot file, user) pair.
type runKey struct {
	seq  uint64
	user phl.UserID
}

// runCache is a small mutex-guarded LRU over decoded cold runs. Cold
// reads are the tiered store's only disk touches after recovery; the
// cache bounds how often a busy anonymity-set computation re-decodes
// the same demoted trajectory while keeping resident memory capped at
// cap entries (the -cold-cache-entries flag).
type runCache struct {
	mu   sync.Mutex
	cap  int
	ents map[runKey]*runEnt
	head *runEnt // most recent
	tail *runEnt // least recent
}

type runEnt struct {
	key        runKey
	pts        []geo.STPoint
	prev, next *runEnt
}

func newRunCache(capacity int) *runCache {
	if capacity <= 0 {
		capacity = 1024
	}
	return &runCache{cap: capacity, ents: make(map[runKey]*runEnt)}
}

// get returns the cached run and moves it to the front.
func (c *runCache) get(k runKey) ([]geo.STPoint, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.ents[k]
	if !ok {
		return nil, false
	}
	c.unlink(e)
	c.push(e)
	return e.pts, true
}

// put inserts a run, evicting from the cold end past capacity.
func (c *runCache) put(k runKey, pts []geo.STPoint) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.ents[k]; ok {
		e.pts = pts
		c.unlink(e)
		c.push(e)
		return
	}
	e := &runEnt{key: k, pts: pts}
	c.ents[k] = e
	c.push(e)
	for len(c.ents) > c.cap {
		last := c.tail
		c.unlink(last)
		delete(c.ents, last.key)
	}
}

// drop invalidates every entry (compaction renames the backing files).
func (c *runCache) drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ents = make(map[runKey]*runEnt)
	c.head, c.tail = nil, nil
}

func (c *runCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ents)
}

func (c *runCache) unlink(e *runEnt) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.head == e {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *runCache) push(e *runEnt) {
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}
