//go:build race

package storage

// raceEnabled reports whether the race detector is compiled in; the
// bounded-memory guard skips under it, since instrumentation inflates
// heap accounting and ingestion speed.
const raceEnabled = true
