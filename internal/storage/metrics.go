package storage

import (
	"histanon/internal/metrics"
	"histanon/internal/obs"
)

// RegisterMetrics exposes the store's counters as the
// histanon_storage_* Prometheus families. The trusted server's
// MetricsRegistry calls it when the configured store implements the
// ts.MetricsSource interface; servers on the default in-memory store
// register zero placeholders instead so the exposition surface is
// deployment-independent.
func (t *TieredStore) RegisterMetrics(r *metrics.Registry) {
	r.RegisterCounterFunc(obs.MetricStorageWALAppends,
		"Location updates appended to the write-ahead log.",
		nil, t.wal.appends.Load)
	r.RegisterCounterFunc(obs.MetricStorageWALFsyncs,
		"WAL fsyncs issued (group commits, rotations, closes).",
		nil, t.wal.fsyncs.Load)
	r.RegisterCounterFunc(obs.MetricStorageWALBytes,
		"Bytes written to the WAL, framing included.",
		nil, t.wal.bytes.Load)
	r.RegisterCounterFunc(obs.MetricStorageWALErrors,
		"WAL write or fsync errors (the first one is fail-stop).",
		nil, t.wal.errs.Load)
	r.RegisterGaugeFunc(obs.MetricStorageWALLag,
		"Appended records not yet covered by an fsync.",
		nil, func() float64 { return float64(t.wal.Lag()) })
	r.RegisterCounterFunc(obs.MetricStorageSnapshots,
		"Snapshot files written, by kind.",
		metrics.Labels{"kind": "full"}, t.snapsFull.Load)
	r.RegisterCounterFunc(obs.MetricStorageSnapshots,
		"Snapshot files written, by kind.",
		metrics.Labels{"kind": "delta"}, t.snapsDelta.Load)
	r.RegisterCounterFunc(obs.MetricStorageSnapshotErrors,
		"Snapshot writes or compactions that failed.",
		nil, t.snapErrs.Load)
	r.RegisterCounterFunc(obs.MetricStorageDemotions,
		"Maintenance cycles that moved samples to the cold tier.",
		nil, t.demotions.Load)
	r.RegisterCounterFunc(obs.MetricStorageDemotedSamples,
		"Samples demoted from memory to the cold tier.",
		nil, t.demoted.Load)
	r.RegisterCounterFunc(obs.MetricStorageColdReads,
		"Cold-tier run reads, by result.",
		metrics.Labels{"result": "hit"}, t.coldHits.Load)
	r.RegisterCounterFunc(obs.MetricStorageColdReads,
		"Cold-tier run reads, by result.",
		metrics.Labels{"result": "miss"}, t.coldMisses.Load)
	r.RegisterCounterFunc(obs.MetricStorageColdReads,
		"Cold-tier run reads, by result.",
		metrics.Labels{"result": "error"}, t.coldErrs.Load)
	r.RegisterGaugeFunc(obs.MetricStorageHotSamples,
		"PHL samples resident in memory (warm + fresh tiers).",
		nil, func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(t.hot)
		})
	r.RegisterGaugeFunc(obs.MetricStorageColdSamples,
		"PHL samples resident only on disk.",
		nil, func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(t.cold)
		})
	r.RegisterGaugeFunc(obs.MetricStorageChainFiles,
		"Files in the live snapshot chain (compaction bounds this).",
		nil, func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.chain))
		})
	r.RegisterGaugeFunc(obs.MetricStorageRecoverySeconds,
		"Wall seconds the last crash recovery took.",
		nil, func() float64 { return t.recovery.Duration.Seconds() })
	r.RegisterGaugeFunc(obs.MetricStorageRecoveryRecords,
		"WAL records replayed by the last recovery.",
		nil, func() float64 { return float64(t.recovery.Replayed) })
	r.RegisterGaugeFunc(obs.MetricStorageFailed,
		"1 while the WAL is failed (every request suppressed), else 0.",
		nil, func() float64 {
			if t.walFailed.Load() {
				return 1
			}
			return 0
		})
}
