// Package storage is the durable tiered backing store for the Personal
// History of Locations: an append-only CRC-framed write-ahead log makes
// every acknowledged location update crash-durable, incremental delta
// snapshots (full dumps only at compaction) bound recovery to the latest
// snapshot chain plus a WAL tail replay, and a hot/cold split keeps only
// recent trajectory windows in memory — older history demotes to on-disk
// per-user runs behind an LRU-cached read path.
//
// The TieredStore implements both phl.Storer and stindex.Index, so it
// plugs into the trusted server where the flat in-memory store and grid
// index sit today; the internal/check differential oracle pins its
// query answers byte-identical to the all-hot implementations. Faults
// are fail-stop and fail-closed: a WAL error permanently fails the
// store, a cold read error is counted and surfaced, and the server
// degrades affected requests to audited suppression (ts.FaultyStorage).
package storage

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the narrow filesystem surface the storage layer needs. The
// production implementation is OSFS; tests use MemFS (which models
// crash semantics: unsynced writes are lost, possibly torn) and the
// chaos harness wraps either in a fault injector.
type FS interface {
	// Create opens the named file for appending, truncating any
	// existing content.
	Create(name string) (File, error)
	// Open opens the named file read-only.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname. Durable only
	// after SyncDir on the parent directory.
	Rename(oldname, newname string) error
	// Remove deletes the named file.
	Remove(name string) error
	// ReadDir lists the file names in the directory, sorted.
	ReadDir(dir string) ([]string, error)
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making renames and creates
	// inside it durable.
	SyncDir(dir string) error
}

// File is the per-file surface: sequential writes for the WAL and
// snapshot writers, random reads for the cold-tier read path.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file's written data to stable storage.
	Sync() error
	// Size returns the current byte size of the file.
	Size() (int64, error)
}

// OSFS implements FS on the operating system's filesystem.
type OSFS struct{}

type osFile struct{ *os.File }

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// join builds a path inside the store directory; filepath.Join keeps
// OSFS and MemFS path handling identical.
func join(dir, name string) string { return filepath.Join(dir, name) }
