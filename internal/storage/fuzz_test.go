package storage

import (
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

// fuzzRec is one fuzz-derived location record.
type fuzzRec struct {
	u phl.UserID
	p geo.STPoint
}

// fuzzRecs derives a bounded workload from fuzz bytes: user ids, a
// coordinate mix that exercises both the fixed-point and raw-float
// encodings, and nondecreasing timestamps.
func fuzzRecs(data []byte) []fuzzRec {
	var out []fuzzRec
	t := int64(0)
	for len(data) >= 5 && len(out) < 64 {
		t += int64(data[1] % 16)
		x := float64(int8(data[2])) * 1.5
		y := float64(int8(data[3])) * 1.5
		if data[4]%3 == 0 {
			// Not representable at the fixed-point scale: forces the
			// raw-float fallback encoding.
			x += 1.0 / 3.0
			y -= 2.0 / 7.0
		}
		out = append(out, fuzzRec{
			u: phl.UserID(data[0] % 8),
			p: geo.STPoint{P: geo.Point{X: x, Y: y}, T: t},
		})
		data = data[5:]
	}
	return out
}

// writeRawSegment plants arbitrary bytes as the first WAL segment.
func writeRawSegment(t *testing.T, fsys *MemFS, data []byte) {
	t.Helper()
	f, err := fsys.Create(join("wal", walSegmentName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// FuzzWALRecord fuzzes the WAL segment replay path from both ends:
// arbitrary bytes must never panic or smuggle an undecodable record
// through replay, and a genuine segment — optionally truncated or
// bit-flipped at a fuzz-chosen position — must either refuse cleanly
// or deliver an exact prefix of what was appended.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte("PWL1 not really a segment"))
	f.Add([]byte{})
	f.Add([]byte{0: 'P', 1: 'W', 2: 'L', 3: '1', 4: 1, 16: 0, 17: 255, 18: 255})
	f.Add([]byte{1, 3, 10, 20, 0, 2, 4, 30, 40, 1, 3, 5, 50, 60, 2, 0xfe, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Leg 1: the fuzz input is the segment. Replay classifies it
		// however it likes, but every record it delivers must survive a
		// canonical re-encode/re-decode round trip.
		raw := NewMemFS()
		writeRawSegment(t, raw, data)
		replayWAL(raw, "wal", 0, func(seq uint64, u phl.UserID, p geo.STPoint) error {
			enc := appendSample(nil, u, p)
			r := sampleReader{buf: enc}
			u2, p2, err := r.sample()
			if err != nil {
				t.Fatalf("replayed record seq %d (%v %v) does not re-decode: %v", seq, u, p, err)
			}
			if u2 != u || p2 != p {
				t.Fatalf("replayed record seq %d not canonical: %v %v -> %v %v", seq, u, p, u2, p2)
			}
			return nil
		})

		// Leg 2: a real segment built from the same bytes, then
		// mutilated at a fuzz-chosen spot.
		recs := fuzzRecs(data)
		if len(recs) == 0 {
			return
		}
		fsys := NewMemFS()
		w, err := openWAL(fsys, "wal", SyncBatch, 1<<20, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			seq, err := w.Append(r.u, r.p)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(seq); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		seg := join("wal", walSegmentName(1))
		mutated := false
		switch data[0] % 3 {
		case 1:
			fsys.Truncate(seg, int64(data[len(data)-1]))
			mutated = true
		case 2:
			fsys.Corrupt(seg, int64(data[len(data)-1]))
			mutated = true
		}

		var got []fuzzRec
		info, err := replayWAL(fsys, "wal", 0, func(seq uint64, u phl.UserID, p geo.STPoint) error {
			if want := uint64(len(got) + 1); seq != want {
				t.Fatalf("replay seq %d, want %d", seq, want)
			}
			got = append(got, fuzzRec{u: u, p: p})
			return nil
		})
		if err != nil {
			if !mutated {
				t.Fatalf("pristine segment refused: %v", err)
			}
			return // clean refusal of a mutilated log is always allowed
		}
		if len(got) > len(recs) {
			t.Fatalf("replay invented records: %d > %d", len(got), len(recs))
		}
		for i := range got {
			if got[i] != recs[i] {
				t.Fatalf("replayed record %d = %+v, want %+v", i, got[i], recs[i])
			}
		}
		if !mutated && (len(got) != len(recs) || info.tornTail) {
			t.Fatalf("pristine segment lost records: got %d of %d (torn=%v)",
				len(got), len(recs), info.tornTail)
		}
	})
}

// fuzzRuns groups fuzz-derived records into per-user time-sorted runs,
// the shape encodeSnapshot requires.
func fuzzRuns(data []byte) []userRun {
	byUser := map[phl.UserID][]geo.STPoint{}
	var order []phl.UserID
	for _, r := range fuzzRecs(data) {
		if _, ok := byUser[r.u]; !ok {
			order = append(order, r.u)
		}
		byUser[r.u] = append(byUser[r.u], r.p)
	}
	runs := make([]userRun, 0, len(order))
	for _, u := range order {
		runs = append(runs, userRun{user: u, pts: byUser[u]})
	}
	return runs
}

// FuzzSnapshotDelta fuzzes the snapshot codec: arbitrary bytes must
// never panic the decoder or yield a run reference outside the file,
// and a genuine snapshot must round-trip exactly — or, with one
// fuzz-chosen byte flipped, fail a checksum somewhere before any wrong
// sample is served.
func FuzzSnapshotDelta(f *testing.F) {
	f.Add([]byte("PSN1 not really a snapshot"))
	f.Add([]byte{})
	f.Add([]byte{'P', 'S', 'N', '1', 1, 1, 8, 0, 0, 0, 0, 0, 0, 0, 2})
	f.Add([]byte{7, 1, 10, 20, 1, 7, 2, 30, 40, 2, 3, 3, 50, 60, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Leg 1: the fuzz input is the file image. A catalog that
		// passes validation must only point inside the image.
		if meta, err := decodeSnapshot(data); err == nil {
			for _, ref := range meta.runs {
				if ref.offset < 0 || ref.length < 0 || ref.offset+ref.length > int64(len(data)) {
					t.Fatalf("validated run ref escapes the file: off=%d len=%d file=%d",
						ref.offset, ref.length, len(data))
				}
				decodeRun(data[ref.offset:ref.offset+ref.length], ref) // must not panic
			}
		}

		// Leg 2: encode a real snapshot from the same bytes.
		runs := fuzzRuns(data)
		if len(runs) == 0 {
			return
		}
		kind, seq, prevSeq := snapDelta, uint64(data[0])+1, uint64(0)
		if data[0]%2 == 0 {
			kind = snapFull
		} else {
			prevSeq = uint64(data[0]) / 2
		}
		img := encodeSnapshot(kind, seq, prevSeq, runs)
		meta, err := decodeSnapshot(img)
		if err != nil {
			t.Fatalf("pristine snapshot refused: %v", err)
		}
		if meta.kind != kind || meta.seq != seq || meta.prevSeq != prevSeq {
			t.Fatalf("header round trip: got %d/%d/%d, want %d/%d/%d",
				meta.kind, meta.seq, meta.prevSeq, kind, seq, prevSeq)
		}
		if len(meta.runs) != len(runs) {
			t.Fatalf("%d run refs, want %d", len(meta.runs), len(runs))
		}
		for i, ref := range meta.runs {
			pts, err := decodeRun(img[ref.offset:ref.offset+ref.length], ref)
			if err != nil {
				t.Fatalf("run %d refused: %v", i, err)
			}
			if len(pts) != len(runs[i].pts) {
				t.Fatalf("run %d: %d pts, want %d", i, len(pts), len(runs[i].pts))
			}
			for j := range pts {
				if pts[j] != runs[i].pts[j] {
					t.Fatalf("run %d pt %d = %v, want %v", i, j, pts[j], runs[i].pts[j])
				}
			}
		}

		// One flipped byte must be caught by a checksum — either the
		// catalog refuses outright or the damaged run refuses to decode.
		flip := int(uint64(data[len(data)-1])+uint64(len(data))) % len(img)
		img[flip] ^= 0x10
		if meta, err := decodeSnapshot(img); err == nil {
			caught := false
			for _, ref := range meta.runs {
				if _, err := decodeRun(img[ref.offset:ref.offset+ref.length], ref); err != nil {
					caught = true
				}
			}
			if !caught {
				t.Fatalf("flipped byte %d of %d escaped every checksum", flip, len(img))
			}
		}
	})
}
