package storage

import (
	"fmt"
	"strings"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
)

func testSample(i int) (phl.UserID, geo.STPoint) {
	return phl.UserID(i % 7), geo.STPoint{
		P: geo.Point{X: float64(i) * 1.5, Y: float64(-i) * 0.25},
		T: int64(1000 + i),
	}
}

type replayed struct {
	seq uint64
	u   phl.UserID
	p   geo.STPoint
}

func replayAll(t *testing.T, fsys FS, dir string, afterSeq uint64) ([]replayed, walReplayInfo) {
	t.Helper()
	var out []replayed
	info, err := replayWAL(fsys, dir, afterSeq, func(seq uint64, u phl.UserID, p geo.STPoint) error {
		out = append(out, replayed{seq, u, p})
		return nil
	})
	if err != nil {
		t.Fatalf("replayWAL: %v", err)
	}
	return out, info
}

func TestWALRoundTrip(t *testing.T) {
	fsys := NewMemFS()
	w, err := openWAL(fsys, "wal", SyncBatch, 1<<20, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	for i := 0; i < n; i++ {
		u, p := testSample(i)
		seq, err := w.Append(u, p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
		if err := w.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, fsys, "wal", 0)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	if info.tornTail {
		t.Fatal("clean log reported torn tail")
	}
	if info.lastSeq != n {
		t.Fatalf("lastSeq = %d, want %d", info.lastSeq, n)
	}
	for i, r := range got {
		u, p := testSample(i)
		if r.seq != uint64(i+1) || r.u != u || r.p != p {
			t.Fatalf("record %d = %+v, want seq=%d u=%d p=%+v", i, r, i+1, u, p)
		}
	}
}

func TestWALSkipsSnapshottedPrefix(t *testing.T) {
	fsys := NewMemFS()
	w, _ := openWAL(fsys, "wal", SyncBatch, 1<<20, 0, nil)
	for i := 0; i < 10; i++ {
		u, p := testSample(i)
		seq, _ := w.Append(u, p)
		w.Commit(seq)
	}
	w.Close()
	got, info := replayAll(t, fsys, "wal", 6)
	if len(got) != 4 || info.skipped != 6 {
		t.Fatalf("replayed %d skipped %d, want 4/6", len(got), info.skipped)
	}
	if got[0].seq != 7 {
		t.Fatalf("first replayed seq = %d, want 7", got[0].seq)
	}
}

func TestWALRotationAndPrune(t *testing.T) {
	fsys := NewMemFS()
	// Tiny segments force many rotations.
	w, err := openWAL(fsys, "wal", SyncBatch, 128, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		u, p := testSample(i)
		seq, err := w.Append(u, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore := 0
	for _, name := range mustReadDir(t, fsys, "wal") {
		if _, ok := parseWALSegmentName(name); ok {
			segsBefore++
		}
	}
	if segsBefore < 3 {
		t.Fatalf("expected multiple segments, got %d", segsBefore)
	}
	got, _ := replayAll(t, fsys, "wal", 0)
	if len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}
	// Prune through seq 150: every fully covered segment goes away and
	// replay still yields the tail without gaps.
	if err := w.Prune(150); err != nil {
		t.Fatal(err)
	}
	w.Close()
	segsAfter := 0
	for _, name := range mustReadDir(t, fsys, "wal") {
		if _, ok := parseWALSegmentName(name); ok {
			segsAfter++
		}
	}
	if segsAfter >= segsBefore {
		t.Fatalf("prune removed nothing: %d -> %d segments", segsBefore, segsAfter)
	}
	got, _ = replayAll(t, fsys, "wal", 150)
	want := 0
	for _, r := range got {
		if r.seq <= 150 {
			t.Fatalf("replay after prune returned pruned seq %d", r.seq)
		}
		want++
	}
	if got[len(got)-1].seq != n {
		t.Fatalf("last seq = %d, want %d", got[len(got)-1].seq, n)
	}
}

func mustReadDir(t *testing.T, fsys FS, dir string) []string {
	t.Helper()
	names, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// A crash with unsynced bytes tears the final record; replay must keep
// every synced record and report the torn tail.
func TestWALTornTailAfterCrash(t *testing.T) {
	fsys := NewMemFS()
	w, _ := openWAL(fsys, "wal", SyncBatch, 1<<20, 0, nil)
	for i := 0; i < 20; i++ {
		u, p := testSample(i)
		seq, _ := w.Append(u, p)
		if err := w.Commit(seq); err != nil {
			t.Fatal(err)
		}
	}
	// Three appends never committed, then the machine dies mid-write:
	// keep only part of the unsynced tail.
	for i := 20; i < 23; i++ {
		u, p := testSample(i)
		w.Append(u, p)
	}
	fsys.TornWriter = func(path string, unsynced int) (int, bool) {
		return unsynced / 2, false
	}
	fsys.Crash()
	got, info := replayAll(t, fsys, "wal", 0)
	if !info.tornTail {
		t.Fatal("expected torn tail after crash")
	}
	if len(got) < 20 {
		t.Fatalf("lost synced records: replayed %d, want >= 20", len(got))
	}
	for i := 0; i < 20; i++ {
		u, p := testSample(i)
		if got[i].u != u || got[i].p != p {
			t.Fatalf("synced record %d corrupted: %+v", i, got[i])
		}
	}
}

// A corrupt byte in the synced interior of a segment must refuse
// replay, not silently drop records.
func TestWALInteriorCorruptionRefuses(t *testing.T) {
	fsys := NewMemFS()
	w, _ := openWAL(fsys, "wal", SyncBatch, 1<<20, 0, nil)
	for i := 0; i < 50; i++ {
		u, p := testSample(i)
		seq, _ := w.Append(u, p)
		w.Commit(seq)
	}
	w.Close()
	// Flip a byte around the middle of the single segment.
	name := ""
	for _, n := range mustReadDir(t, fsys, "wal") {
		if _, ok := parseWALSegmentName(n); ok {
			name = n
		}
	}
	if err := fsys.Corrupt(join("wal", name), 300); err != nil {
		t.Fatal(err)
	}
	_, err := replayWAL(fsys, "wal", 0, func(uint64, phl.UserID, geo.STPoint) error { return nil })
	if err == nil {
		t.Fatal("interior corruption replayed without error")
	}
	if !strings.Contains(err.Error(), "wal segment") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// Corrupting the very last record's CRC is indistinguishable from a
// torn sector under the tail: replay tolerates it and reports it.
func TestWALFinalRecordCorruptionIsTornTail(t *testing.T) {
	fsys := NewMemFS()
	w, _ := openWAL(fsys, "wal", SyncBatch, 1<<20, 0, nil)
	for i := 0; i < 10; i++ {
		u, p := testSample(i)
		seq, _ := w.Append(u, p)
		w.Commit(seq)
	}
	w.Close()
	name := ""
	for _, n := range mustReadDir(t, fsys, "wal") {
		if _, ok := parseWALSegmentName(n); ok {
			name = n
		}
	}
	if err := fsys.Corrupt(join("wal", name), -2); err != nil {
		t.Fatal(err)
	}
	got, info := replayAll(t, fsys, "wal", 0)
	if !info.tornTail {
		t.Fatal("final-record corruption should read as a torn tail")
	}
	if len(got) != 9 {
		t.Fatalf("replayed %d records, want 9", len(got))
	}
}

// A missing segment in the middle of the sequence is a gap: refuse.
func TestWALSegmentGapRefuses(t *testing.T) {
	fsys := NewMemFS()
	w, _ := openWAL(fsys, "wal", SyncBatch, 128, 0, nil)
	for i := 0; i < 100; i++ {
		u, p := testSample(i)
		seq, _ := w.Append(u, p)
		w.Commit(seq)
	}
	w.Close()
	var segs []string
	for _, n := range mustReadDir(t, fsys, "wal") {
		if _, ok := parseWALSegmentName(n); ok {
			segs = append(segs, n)
		}
	}
	if len(segs) < 3 {
		t.Fatalf("need >= 3 segments, got %d", len(segs))
	}
	if err := fsys.Remove(join("wal", segs[1])); err != nil {
		t.Fatal(err)
	}
	_, err := replayWAL(fsys, "wal", 0, func(uint64, phl.UserID, geo.STPoint) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("expected gap error, got %v", err)
	}
}

// After a write error the WAL is fail-stop: every later operation
// returns ErrWALFailed.
func TestWALFailStop(t *testing.T) {
	fsys := NewMemFS()
	w, _ := openWAL(fsys, "wal", SyncAlways, 1<<20, 0, nil)
	u, p := testSample(0)
	seq, err := w.Append(u, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
	fsys.FailWrites = fmt.Errorf("disk full")
	if _, err := w.Append(u, p); err == nil {
		t.Fatal("append after write failure succeeded")
	}
	fsys.FailWrites = nil
	if _, err := w.Append(u, p); err == nil {
		t.Fatal("WAL not fail-stop: append after failure succeeded")
	}
	if w.Err() == nil {
		t.Fatal("Err() nil after failure")
	}
}

func TestWALSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncBatch, SyncAlways, SyncNone} {
		fsys := NewMemFS()
		w, _ := openWAL(fsys, "wal", pol, 1<<20, 0, nil)
		for i := 0; i < 10; i++ {
			u, p := testSample(i)
			seq, err := w.Append(u, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Commit(seq); err != nil {
				t.Fatal(err)
			}
		}
		switch pol {
		case SyncNone:
			if got := w.fsyncs.Load(); got != 0 {
				t.Fatalf("%v: %d fsyncs, want 0", pol, got)
			}
		case SyncAlways, SyncBatch:
			// Sequential appends: every commit leads its own group.
			if got := w.fsyncs.Load(); got == 0 {
				t.Fatalf("%v: no fsyncs", pol)
			}
		}
		w.Close()
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"batch", SyncBatch, false},
		{"", SyncBatch, false},
		{"always", SyncAlways, false},
		{"none", SyncNone, false},
		{"sometimes", 0, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if tc.err != (err != nil) || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if SyncBatch.String() != "batch" || SyncAlways.String() != "always" || SyncNone.String() != "none" {
		t.Fatal("SyncPolicy.String mismatch")
	}
}

// Concurrent appenders must all become durable and replay in sequence
// order with no loss (group commit correctness).
func TestWALConcurrentGroupCommit(t *testing.T) {
	fsys := NewMemFS()
	w, _ := openWAL(fsys, "wal", SyncBatch, 1<<20, 0, nil)
	const workers, per = 8, 50
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				u, p := testSample(g*per + i)
				seq, err := w.Append(u, p)
				if err != nil {
					errs <- err
					return
				}
				if err := w.Commit(seq); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < workers; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	got, _ := replayAll(t, fsys, "wal", 0)
	if len(got) != workers*per {
		t.Fatalf("replayed %d, want %d", len(got), workers*per)
	}
	for i, r := range got {
		if r.seq != uint64(i+1) {
			t.Fatalf("sequence hole at %d: %d", i, r.seq)
		}
	}
}

func TestCodecNonMinimalVarintRejected(t *testing.T) {
	// 0x80 0x00 is a two-byte encoding of zero.
	r := sampleReader{buf: []byte{0x80, 0x00}}
	if _, err := r.uvarint(); err == nil {
		t.Fatal("non-minimal varint accepted")
	}
}

func TestCodecRoundTripExtremes(t *testing.T) {
	pts := []geo.STPoint{
		{P: geo.Point{X: 0, Y: 0}, T: 0},
		{P: geo.Point{X: 1.25, Y: -3.5}, T: -1},
		{P: geo.Point{X: 1e300, Y: -1e-300}, T: 1 << 60},
		{P: geo.Point{X: 0.1, Y: 0.3}, T: 42}, // not fixed-point exact
	}
	for _, p := range pts {
		buf := appendSample(nil, 12345, p)
		r := sampleReader{buf: buf}
		u, got, err := r.sample()
		if err != nil {
			t.Fatalf("decode %+v: %v", p, err)
		}
		if u != 12345 || got != p || r.len() != 0 {
			t.Fatalf("round trip %+v -> %+v (user %d)", p, got, u)
		}
	}
}
