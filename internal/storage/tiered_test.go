package storage

import (
	"fmt"
	"math/rand"
	"testing"

	"histanon/internal/geo"
	"histanon/internal/phl"
	"histanon/internal/stindex"
)

// aggressive demotes nearly everything at every opportunity: tiny hot
// window, maintenance every 32 records, compaction after 3 deltas.
func aggressive(fsys FS) Options {
	return Options{
		Dir:              "store",
		FS:               fsys,
		SnapshotEvery:    32,
		HotWindow:        60,
		MaxDeltas:        3,
		ColdCacheEntries: 8,
	}
}

func mustOpen(t *testing.T, opts Options) *TieredStore {
	t.Helper()
	ts, _, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// randWorkload drives identical samples into both stores: continuous
// coordinates (ties have probability zero), drifting time.
func randWorkload(rng *rand.Rand, n, users int, apply ...func(phl.UserID, geo.STPoint)) {
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(rng.Intn(10))
		u := phl.UserID(rng.Intn(users))
		p := geo.STPoint{
			P: geo.Point{X: rng.Float64() * 5e3, Y: rng.Float64() * 5e3},
			T: t,
		}
		for _, f := range apply {
			f(u, p)
		}
	}
}

func sameHistories(t *testing.T, ref *phl.Store, ts *TieredStore) {
	t.Helper()
	if ts.NumUsers() != ref.NumUsers() || ts.NumSamples() != ref.NumSamples() {
		t.Fatalf("size mismatch: %d/%d users, %d/%d samples",
			ts.NumUsers(), ref.NumUsers(), ts.NumSamples(), ref.NumSamples())
	}
	refUsers := ref.Users()
	gotUsers := ts.Users()
	for i := range refUsers {
		if gotUsers[i] != refUsers[i] {
			t.Fatalf("user order diverges at %d: %d vs %d", i, gotUsers[i], refUsers[i])
		}
	}
	for _, u := range refUsers {
		want := ref.History(u).Points()
		got := ts.History(u).Points()
		if len(got) != len(want) {
			t.Fatalf("user %d: %d samples, want %d", u, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("user %d sample %d: %+v, want %+v", u, i, got[i], want[i])
			}
		}
	}
}

func sameQueries(t *testing.T, rng *rand.Rand, ref *phl.Store, ts *TieredStore, queries int) {
	t.Helper()
	maxT := int64(0)
	for _, u := range ref.Users() {
		h := ref.History(u)
		if h.Len() > 0 && h.At(h.Len()-1).T > maxT {
			maxT = h.At(h.Len() - 1).T
		}
	}
	for q := 0; q < queries; q++ {
		x, y := rng.Float64()*5e3, rng.Float64()*5e3
		t0 := int64(rng.Float64() * float64(maxT))
		box := geo.STBox{
			Area: geo.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*2e3, MaxY: y + rng.Float64()*2e3},
			Time: geo.Interval{Start: t0, End: t0 + int64(rng.Intn(200))},
		}
		want := ref.UsersIn(box)
		got := ts.UsersIn(box)
		if len(want) != len(got) {
			t.Fatalf("query %d: UsersIn %d vs %d users (box %+v)", q, len(got), len(want), box)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: UsersIn[%d] = %d, want %d", q, i, got[i], want[i])
			}
		}
		if ts.CountUsersIn(box) != len(want) {
			t.Fatalf("query %d: CountUsersIn mismatch", q)
		}
	}
}

func TestTieredMatchesAllHotStore(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	defer ts.Close()
	ref := phl.NewStore()
	randWorkload(rng, 3000, 40, ref.Record, ts.Record)

	if ts.Stats().DemotedSamples == 0 {
		t.Fatal("workload demoted nothing; test exercises only the hot path")
	}
	sameHistories(t, ref, ts)
	sameQueries(t, rng, ref, ts, 200)
}

func TestTieredLTConsistentMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	defer ts.Close()
	ref := phl.NewStore()
	randWorkload(rng, 2000, 30, ref.Record, ts.Record)

	for q := 0; q < 50; q++ {
		var boxes []geo.STBox
		for b := 0; b < 1+rng.Intn(3); b++ {
			x, y := rng.Float64()*5e3, rng.Float64()*5e3
			t0 := int64(rng.Intn(2000))
			boxes = append(boxes, geo.STBox{
				Area: geo.Rect{MinX: x, MinY: y, MaxX: x + 2e3, MaxY: y + 2e3},
				Time: geo.Interval{Start: t0, End: t0 + 500},
			})
		}
		want := ref.LTConsistentUsers(boxes)
		got := ts.LTConsistentUsers(boxes)
		if len(want) != len(got) {
			t.Fatalf("LTConsistentUsers: %d vs %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("LTConsistentUsers[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	}
}

func TestTieredKNNMatchesGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	defer ts.Close()
	grid := stindex.NewGrid(500, 900)
	ref := phl.NewStore()
	randWorkload(rng, 2000, 30, ref.Record, ts.Record,
		func(u phl.UserID, p geo.STPoint) { grid.Insert(u, p); ts.Insert(u, p) })

	if ts.Stats().DemotedSamples == 0 {
		t.Fatal("nothing demoted")
	}
	m := geo.STMetric{TimeScale: 2}
	for q := 0; q < 100; q++ {
		qp := geo.STPoint{
			P: geo.Point{X: rng.Float64() * 5e3, Y: rng.Float64() * 5e3},
			T: int64(rng.Intn(2000)),
		}
		k := 1 + rng.Intn(8)
		want := grid.KNearestUsers(qp, k, m, nil)
		got := ts.KNearestUsers(qp, k, m, nil)
		if len(want) != len(got) {
			t.Fatalf("query %d: KNN returned %d users, want %d", q, len(got), len(want))
		}
		for i := range want {
			wd := m.Dist(qp, want[i].Point)
			gd := m.Dist(qp, got[i].Point)
			if got[i].User != want[i].User || wd != gd {
				t.Fatalf("query %d rank %d: (%d, %g) vs (%d, %g)",
					q, i, got[i].User, gd, want[i].User, wd)
			}
		}
	}
}

func TestTieredRecoveryAfterClose(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	ref := phl.NewStore()
	randWorkload(rng, 1500, 25, ref.Record, ts.Record)
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, info, err := Open(aggressive(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close()
	if info.TornTail {
		t.Fatal("clean shutdown reported torn tail")
	}
	sameHistories(t, ref, ts2)
	sameQueries(t, rng, ref, ts2, 100)
}

func TestTieredRecoveryAfterCrash(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		fsys := NewMemFS()
		ts := mustOpen(t, aggressive(fsys))
		ref := phl.NewStore() // acked samples only
		n := 200 + rng.Intn(1500)
		randWorkload(rng, n, 20, func(u phl.UserID, p geo.STPoint) {
			ts.Record(u, p)
			if !ts.StorageFailed() {
				ref.Record(u, p) // Record returned with a durable WAL: acked
			}
		})
		fsys.TornWriter = func(path string, unsynced int) (int, bool) {
			return rng.Intn(unsynced + 1), rng.Intn(2) == 0
		}
		fsys.Crash()
		fsys.TornWriter = nil

		ts2, _, err := Open(aggressive(fsys))
		if err != nil {
			t.Fatalf("seed %d: recovery refused: %v", seed, err)
		}
		sameHistories(t, ref, ts2)
		ts2.Close()
	}
}

// Recovery is idempotent: opening, closing and reopening without
// writes yields the same PHL every time.
func TestTieredRecoveryIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	ref := phl.NewStore()
	randWorkload(rng, 1000, 20, ref.Record, ts.Record)
	ts.Close()
	for round := 0; round < 3; round++ {
		ts2 := mustOpen(t, aggressive(fsys))
		sameHistories(t, ref, ts2)
		if err := ts2.Close(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestTieredColdReadFaultDegrades(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	defer ts.Close()
	randWorkload(rng, 2000, 10, ts.Record)
	if ts.Stats().DemotedSamples == 0 {
		t.Fatal("nothing demoted")
	}
	full := 0
	for _, u := range ts.Users() {
		full += ts.History(u).Len()
	}
	if full != ts.NumSamples() {
		t.Fatalf("healthy histories hold %d samples, store reports %d", full, ts.NumSamples())
	}

	fsys.FailReads = fmt.Errorf("injected IO error")
	ts.cache.drop() // force disk touches
	faults0 := ts.StorageFaults()
	broken := 0
	for _, u := range ts.Users() {
		broken += ts.History(u).Len()
	}
	if broken >= full {
		t.Fatal("cold reads failed but histories did not shrink")
	}
	if ts.StorageFaults() == faults0 {
		t.Fatal("cold read errors not counted as storage faults")
	}
	if ts.StorageFailed() {
		t.Fatal("cold read errors must degrade, not fail-stop")
	}
	fsys.FailReads = nil
	repaired := 0
	for _, u := range ts.Users() {
		repaired += ts.History(u).Len()
	}
	if repaired != full {
		t.Fatal("store did not recover once reads heal")
	}
}

func TestTieredWALFailureIsFailStop(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	randWorkload(rng, 100, 5, ts.Record)
	if ts.StorageFailed() {
		t.Fatal("healthy store reports failed")
	}
	fsys.FailSyncs = fmt.Errorf("injected fsync error")
	u, p := testSample(0)
	ts.Record(u, p)
	if !ts.StorageFailed() {
		t.Fatal("fsync error did not latch fail-stop")
	}
	// The sample is still readable (memory stays coherent) but the
	// store stays failed even after the disk heals.
	fsys.FailSyncs = nil
	ts.Record(u, p)
	if !ts.StorageFailed() {
		t.Fatal("fail-stop did not stick")
	}
}

func TestTieredCorruptSnapshotRefusesBoot(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	randWorkload(rng, 1000, 10, ts.Record)
	ts.Close()
	var snapPath string
	for _, p := range fsys.Files() {
		if _, _, ok := parseSnapshotName(p[len("store/"):]); ok {
			snapPath = p
		}
	}
	if snapPath == "" {
		t.Fatal("no snapshot written")
	}
	if err := fsys.Corrupt(snapPath, 40); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(aggressive(fsys)); err == nil {
		t.Fatal("boot accepted a corrupt snapshot")
	}
}

func TestTieredCompactionBoundsFiles(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	fsys := NewMemFS()
	opts := aggressive(fsys)
	ts := mustOpen(t, opts)
	defer ts.Close()
	ref := phl.NewStore()
	randWorkload(rng, 5000, 20, ref.Record, ts.Record)
	st := ts.Stats()
	if st.SnapshotsFull == 0 {
		t.Fatal("no compaction happened")
	}
	if st.ChainFiles > opts.MaxDeltas+1 {
		t.Fatalf("chain has %d files, cap %d", st.ChainFiles, opts.MaxDeltas+1)
	}
	sameHistories(t, ref, ts)
}

// The WAL must not grow without bound while snapshots cover it.
func TestTieredWALPruned(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	fsys := NewMemFS()
	opts := aggressive(fsys)
	opts.SegmentBytes = 2048
	ts := mustOpen(t, opts)
	defer ts.Close()
	randWorkload(rng, 5000, 20, ts.Record)
	segs := 0
	for _, p := range fsys.Files() {
		if _, ok := parseWALSegmentName(p[len("store/"):]); ok {
			segs++
		}
	}
	if segs > 3 {
		t.Fatalf("%d live WAL segments after continuous pruning", segs)
	}
}

func TestTieredStatsAndRecoveryInfo(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	randWorkload(rng, 2000, 20, ts.Record)
	st := ts.Stats()
	if st.WALAppends != 2000 || st.WALErrors != 0 || st.Failed {
		t.Fatalf("stats = %+v", st)
	}
	if st.WALFsyncs == 0 || st.WALBytes == 0 || st.SnapshotsDelta == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.HotSamples+st.ColdSamples != 2000 {
		t.Fatalf("hot %d + cold %d != 2000", st.HotSamples, st.ColdSamples)
	}
	ts.Close()
	ts2, info, err := Open(aggressive(fsys))
	if err != nil {
		t.Fatal(err)
	}
	defer ts2.Close()
	if info.ColdSamples+info.WarmSamples+info.Replayed != 2000 {
		t.Fatalf("recovery accounts for %d samples, want 2000: %+v",
			info.ColdSamples+info.WarmSamples+info.Replayed, info)
	}
	if got := ts2.Recovery(); got != *info {
		t.Fatal("Recovery() differs from Open's info")
	}
}

func TestTieredWriteSnapshotMatchesFlatStore(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	fsys := NewMemFS()
	ts := mustOpen(t, aggressive(fsys))
	defer ts.Close()
	ref := phl.NewStore()
	randWorkload(rng, 1000, 15, ref.Record, ts.Record)

	var a, b memBuf
	if err := ref.WriteSnapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := ts.WriteSnapshot(&b); err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("tiered WriteSnapshot differs from all-hot store")
	}
}

type memBuf []byte

func (b *memBuf) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}
