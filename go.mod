module histanon

go 1.22
