package histanon_test

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"histanon"
)

// TestPublicAPIQuickstart exercises the facade the way README's
// quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	provider := histanon.NewProvider()
	server := histanon.NewTrustedServer(histanon.Config{}, provider)

	const alice = histanon.UserID(1)
	server.RegisterUser(alice, histanon.PolicyForLevel(histanon.Medium))
	err := server.AddLBQIDSpec(alice, `
lbqid "commute" {
    element "Home"   area [0,200]x[0,200]     time [07:00,08:00]
    element "Office" area [1800,2200]x[0,200] time [08:00,09:00]
    recurrence 3.Weekdays * 2.Weeks
}`)
	if err != nil {
		t.Fatal(err)
	}
	for u := histanon.UserID(2); u <= 9; u++ {
		dx := float64(u) * 12
		server.RecordLocation(u, histanon.STPoint{
			P: histanon.Point{X: 40 + dx, Y: 30 + dx/2}, T: 7*histanon.Hour + int64(u)*40,
		})
	}
	dec := server.Request(alice,
		histanon.STPoint{P: histanon.Point{X: 50, Y: 40}, T: 7*histanon.Hour + 600},
		"navigation", map[string]string{"dest": "office"})
	if !dec.Forwarded || !dec.Generalized || !dec.HKAnonymity {
		t.Fatalf("decision: %+v", dec)
	}
	if dec.MatchedLBQID != "commute" {
		t.Fatalf("matched %q", dec.MatchedLBQID)
	}
	reqs := provider.Requests()
	if len(reqs) != 1 || reqs[0].Pseudonym == "" {
		t.Fatalf("provider log: %+v", reqs)
	}
	if reqs[0].Context.Area.Area() <= 0 {
		t.Fatalf("context not generalized: %v", reqs[0].Context)
	}
}

// TestPublicAPIObservability exercises the facade's observability
// surface the way doc.go's Observability section does.
func TestPublicAPIObservability(t *testing.T) {
	provider := histanon.NewProvider()
	server := histanon.NewTrustedServer(histanon.Config{}, provider)

	var audit bytes.Buffer
	server.Obs.SetAudit(histanon.NewAuditLog(&audit))
	server.Obs.Tracer.SetSampleRate(1)

	const alice = histanon.UserID(1)
	server.RegisterUser(alice, histanon.PolicyForLevel(histanon.Medium))
	if err := server.AddLBQIDSpec(alice, `
lbqid "commute" {
    element area [0,200]x[0,200] time [07:00,08:00]
    recurrence 3.Weekdays * 2.Weeks
}`); err != nil {
		t.Fatal(err)
	}
	for u := histanon.UserID(2); u <= 9; u++ {
		dx := float64(u) * 12
		server.RecordLocation(u, histanon.STPoint{
			P: histanon.Point{X: 40 + dx, Y: 30 + dx/2}, T: 7*histanon.Hour + int64(u)*40,
		})
	}
	server.Request(alice,
		histanon.STPoint{P: histanon.Point{X: 50, Y: 40}, T: 7*histanon.Hour + 600},
		"navigation", nil)

	var exposition strings.Builder
	if err := server.MetricsRegistry().WritePrometheus(&exposition); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(exposition.String(), `histanon_ts_events_total{event="requests"} 1`) {
		t.Fatalf("exposition missing request counter:\n%s", exposition.String())
	}
	if err := server.Obs.AuditSink().Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := histanon.ReadAuditEvents(bytes.NewReader(audit.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("generalized request produced no audit events")
	}
	h, err := histanon.ReplayAchievedK(bytes.NewReader(audit.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != server.Obs.AchievedK.Count() {
		t.Fatalf("replayed %d observations, live %d", h.Count(), server.Obs.AchievedK.Count())
	}
}

func TestPublicAPIParseLBQIDs(t *testing.T) {
	qs, err := histanon.ParseLBQIDs(strings.NewReader(`
lbqid "a" {
    element area [0,1]x[0,1] time [07:00,08:00]
}
lbqid "b" {
    element area [0,1]x[0,1] time [09:00,10:00]
    recurrence 2.Days
}`))
	if err != nil || len(qs) != 2 {
		t.Fatalf("ParseLBQIDs: %d patterns, err=%v", len(qs), err)
	}
	m := histanon.NewMatcher(qs[1])
	out := m.Offer(1, histanon.STPoint{P: histanon.Point{X: 0.5, Y: 0.5}, T: 9*histanon.Hour + 60})
	if !out.Matched {
		t.Fatalf("matcher outcome: %+v", out)
	}
}

func TestPublicAPIMobilityAndMining(t *testing.T) {
	cfg := histanon.DefaultMobilityConfig()
	cfg.Users = 20
	cfg.Days = 7
	world := histanon.GenerateMobility(cfg)
	if len(world.Events) == 0 {
		t.Fatal("no events")
	}
	// Feed into a server's store and mine it.
	server := histanon.NewTrustedServer(histanon.Config{}, histanon.NewProvider())
	for _, ev := range world.Events {
		server.RecordLocation(ev.User, ev.Point)
	}
	cands := histanon.MineLBQIDs(server.Store(), histanon.MineConfig{WeekdaysOnly: true, MaxSharers: 5})
	if len(cands) == 0 {
		t.Fatal("mining found nothing in a commuting city")
	}
}

func TestPublicAPIPolicies(t *testing.T) {
	set, err := histanon.ParsePolicies(strings.NewReader(`
rule "strict" when service=navigation then k=9
default level=low
`))
	if err != nil {
		t.Fatal(err)
	}
	server := histanon.NewTrustedServer(histanon.Config{Policies: set}, histanon.NewProvider())
	_ = server // policy resolution is covered in internal/policy; here we
	// only assert the public wiring compiles and constructs.
	if got := set.Resolve("navigation", histanon.STPoint{}); got.K != 9 {
		t.Fatalf("resolve: %+v", got)
	}
}

func TestPublicAPIHTTP(t *testing.T) {
	server := histanon.NewTrustedServer(histanon.Config{DefaultPolicy: histanon.Policy{K: 2}}, histanon.NewProvider())
	hts := httptest.NewServer(histanon.NewAPIHandler(server))
	defer hts.Close()
	c := histanon.NewAPIClient(hts.URL)
	if err := c.RecordLocation(1, 10, 10, 100); err != nil {
		t.Fatal(err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.TrackedUsers != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

func TestPublicAPIDeployment(t *testing.T) {
	cfg := histanon.DefaultMobilityConfig()
	cfg.Users = 30
	cfg.Days = 3
	world := histanon.GenerateMobility(cfg)
	server := histanon.NewTrustedServer(histanon.Config{}, histanon.NewProvider())
	for _, ev := range world.Events {
		server.RecordLocation(ev.User, ev.Point)
	}
	rep, err := histanon.AnalyzeDeployment(histanon.DeployInput{
		Store:  server.Store(),
		Metric: histanon.STMetric{TimeScale: 1},
		K:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples == 0 {
		t.Fatal("no samples analyzed")
	}
}
