// Command lbserve runs the trusted server as an HTTP daemon — the
// deployable form of the paper's Fig. 1. Devices POST location updates
// and service requests; forwarded requests are printed (or discarded)
// on the SP side.
//
// Usage:
//
//	lbserve -addr :7408 -k 5 -print-forwarded
//	curl -s localhost:7408/healthz
//	curl -s -XPOST localhost:7408/v1/request -d '{"user":1,"x":10,"y":10,"t":25500,"service":"navigation"}'
//
// Observability (see OBSERVABILITY.md for the full reference):
//
//	lbserve -trace-sample 0.001 -trace-tail-slow 50ms -metrics-exemplars -audit audit.jsonl -pprof
//	curl -s localhost:7408/metrics             # Prometheus text exposition
//	curl -s localhost:7408/v1/spans            # recent retained request spans
//	curl -s localhost:7408/v1/spans?trace=ID   # one trace (request + delivery spans)
//	curl -s localhost:7408/v1/spans/summary    # outcome / keep-reason / stage breakdown
//	go tool pprof localhost:7408/debug/pprof/profile?seconds=10
//
// Requests may carry a W3C traceparent header; the response rejoins
// the caller's trace and anomalous requests (degraded, denied,
// dropped, breaker-affected, slow) are always tail-retained in the
// span ring regardless of the -trace-sample head rate.
//
// Resilience (see DESIGN.md §9): SP delivery runs through a bounded
// async queue with retries and per-service circuit breaking; overload
// is shed with 503s; the PHL is snapshotted periodically and on
// SIGINT/SIGTERM. When delivery cannot be guaranteed the server fails
// closed — requests are suppressed, never forwarded less generalized.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"histanon/internal/httpapi"
	"histanon/internal/mixzone"
	"histanon/internal/obs"
	"histanon/internal/policy"
	"histanon/internal/resilience"
	"histanon/internal/slo"
	"histanon/internal/storage"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":7408", "listen address")
		k          = flag.Int("k", 5, "default historical anonymity value")
		randomize  = flag.Int64("randomize", 0, "seed for the randomization defense (0 = off)")
		policyFile = flag.String("policies", "", "rule-based policy file (see internal/policy)")
		printFwd   = flag.Bool("print-forwarded", false, "log every request forwarded to the SP side")
		snapshot   = flag.String("snapshot", "", "PHL snapshot file: loaded at boot, written every -snapshot-interval and on SIGINT/SIGTERM")

		walDir    = flag.String("wal-dir", "", "durable tiered PHL storage directory: write-ahead log + incremental snapshots + cold tier; boot recovers the PHL from it (see DESIGN.md §12)")
		walFsync  = flag.String("wal-fsync", "batch", "WAL fsync policy: batch (group commit, default), always (fsync per record), none (fsync only on rotation/shutdown)")
		hotWindow = flag.Duration("hot-window", time.Hour, "how much recent history stays in memory; older samples demote to on-disk runs (needs -wal-dir)")
		coldCache = flag.Int("cold-cache-entries", 1024, "LRU cache capacity for cold-tier run reads (needs -wal-dir)")
		snapEvery = flag.Duration("snapshot-interval", 5*time.Minute, "periodic PHL snapshot period (needs -snapshot)")
		sample    = flag.Float64("trace-sample", 0.01, "fraction of requests to trace into /v1/spans and the stage histograms (0 = off, 1 = all)")
		traceBuf  = flag.Int("trace-buffer", obs.DefaultRingSize, "span ring-buffer capacity")
		tailSlow  = flag.Duration("trace-tail-slow", 0, "tail-sampling slow threshold: completed spans at least this slow are retained even when head sampling missed them (0 = off)")
		exemplars = flag.Bool("metrics-exemplars", false, "emit OpenMetrics exemplars (trace ids) on /metrics histogram buckets")
		auditPath = flag.String("audit", "", "privacy audit log (JSON lines), appended; flushed on SIGINT/SIGTERM")
		pprofOn   = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (operator networks only)")

		// Privacy-SLO engine: windowed burn-rate alerting over the
		// decision stream plus the live re-identification canary
		// (GET /v1/slo, the SLO section of /healthz, histanon_slo_*).
		sloOn        = flag.Bool("slo", true, "enable the privacy-SLO engine (windowed achieved-k tracking and burn-rate alerts)")
		sloObjective = flag.String("slo-objective", "below_k<0.1%", "privacy objectives, comma-separated signal<budget%[;warn=F][;page=F][;min=N] (signals: below_k, suppression, degraded)")
		sloWindows   = flag.String("slo-windows", "1m,10m,1h", "SLO sliding windows, comma-separated durations, strictly increasing whole seconds")
		canaryEvery  = flag.Duration("canary-interval", 0, "re-identification canary probe interval (0 = canary off); probes replay recent forwarded requests through the LT-consistency attack, read-only and rate-limited")

		// HTTP hardening: slowloris and overload protection.
		readTimeout  = flag.Duration("read-timeout", 10*time.Second, "http.Server ReadTimeout")
		readHdrTO    = flag.Duration("read-header-timeout", 5*time.Second, "http.Server ReadHeaderTimeout")
		writeTimeout = flag.Duration("write-timeout", 10*time.Second, "http.Server WriteTimeout (raised to 60s when -pprof so CPU profiles can stream)")
		idleTimeout  = flag.Duration("idle-timeout", 120*time.Second, "http.Server IdleTimeout for keep-alive connections")
		maxInFlight  = flag.Int("max-inflight", 256, "concurrently served requests before shedding with 503 (0 = unlimited)")
		maxBody      = flag.Int64("max-body", httpapi.DefaultMaxBodyBytes, "request body byte bound; larger bodies get 413")

		wireBatch     = flag.Bool("wire-batch", true, "serve the binary wire-protocol batch endpoint (POST /v1/batch)")
		wireBatchBody = flag.Int64("wire-batch-max-body", wire.MaxFrameBytes+16, "body byte bound for /v1/batch (binary batches outgrow JSON bodies; 0 = use -max-body)")

		// Async SP delivery: queue, retries, circuit breaking.
		spQueue      = flag.Int("sp-queue", 1024, "async SP delivery queue bound; a full queue suppresses new requests (fail closed)")
		spWorkers    = flag.Int("sp-workers", 4, "concurrent SP delivery workers")
		spRetries    = flag.Int("sp-retries", 4, "delivery attempts per request before dropping")
		spDeadline   = flag.Duration("sp-deadline", 5*time.Second, "end-to-end delivery budget per request, enqueue to last retry")
		spBrFailures = flag.Int("sp-breaker-failures", 5, "consecutive delivery failures before a service's circuit breaker opens")
		spBrReset    = flag.Duration("sp-breaker-reset", 5*time.Second, "how long an open breaker waits before probing the service again")
	)
	flag.Parse()

	cfg := ts.Config{
		DefaultPolicy: ts.Policy{K: *k},
		OnDemand: mixzone.OnDemand{
			Quiet:          600,
			Divergence:     mixzone.Divergence{MinAngle: 0.3},
			FallbackRadius: 800,
		},
		RandomizeSeed: *randomize,
	}
	if *policyFile != "" {
		f, err := os.Open(*policyFile)
		if err != nil {
			log.Fatalf("lbserve: %v", err)
		}
		set, err := policy.Parse(f)
		f.Close()
		if err != nil {
			log.Fatalf("lbserve: parsing policies: %v", err)
		}
		cfg.Policies = set
		log.Printf("loaded %d policy rules", len(set.Rules))
	}

	// The audit log opens before the outbox so the delivery workers see
	// a settled sink (a nil *AuditLog is a valid no-op).
	var audit *obs.AuditLog
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("lbserve: opening audit log: %v", err)
		}
		audit = obs.NewAuditLog(f)
		log.Printf("audit log appending to %s", *auditPath)
	}

	// The SP side: the print/discard sink, wrapped in the resilience
	// outbox so delivery is asynchronous, retried, circuit-broken and —
	// when it cannot be guaranteed — refused, which the trusted server
	// turns into a fail-closed suppression.
	sink := resilience.DeliveryFunc(func(req *wire.Request) error {
		if *printFwd {
			log.Printf("SP <- %s", req)
		}
		return nil
	})
	outbox := resilience.NewOutbox(sink, resilience.Options{
		QueueSize:   *spQueue,
		Workers:     *spWorkers,
		Deadline:    *spDeadline,
		MaxAttempts: *spRetries,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: *spBrFailures,
			OpenFor:          *spBrReset,
		},
		Audit: func(e obs.Event) { audit.Log(e) },
	})
	// Durable tiered storage: when -wal-dir is set the PHL lives in a
	// WAL + snapshot-chain store and survives crashes; the store also
	// serves as the spatio-temporal index so demotion stays invisible
	// to Algorithm 1. A WAL failure is fail-stop: the server suppresses
	// every request until restarted on a healthy disk.
	var tiered *storage.TieredStore
	if *walDir != "" {
		sync, err := storage.ParseSyncPolicy(*walFsync)
		if err != nil {
			log.Fatalf("lbserve: %v", err)
		}
		st, info, err := storage.Open(storage.Options{
			Dir:              *walDir,
			Sync:             sync,
			HotWindow:        int64(hotWindow.Seconds()),
			ColdCacheEntries: *coldCache,
		})
		if err != nil {
			log.Fatalf("lbserve: opening storage %s: %v", *walDir, err)
		}
		tiered = st
		cfg.Store = st
		log.Printf("recovered %d users / %d samples from %s in %s (%d cold, %d WAL records replayed, torn tail: %v)",
			st.NumUsers(), st.NumSamples(), *walDir, info.Duration.Round(time.Millisecond),
			info.ColdSamples, info.Replayed, info.TornTail)
	}

	// SLO engine configuration must settle before ts.New: the engine's
	// windows and objectives are fixed at construction (the metric
	// families registered per window depend on them).
	if *sloOn {
		objectives, err := slo.ParseObjectives(*sloObjective)
		if err != nil {
			log.Fatalf("lbserve: -slo-objective: %v", err)
		}
		windows, err := slo.ParseWindows(*sloWindows)
		if err != nil {
			log.Fatalf("lbserve: -slo-windows: %v", err)
		}
		cfg.SLO = slo.Options{Windows: windows, Objectives: objectives}
	}

	srv := ts.New(cfg, outbox)
	if *sloOn {
		srv.SLO.SetEnabled(true)
		log.Printf("privacy-SLO engine on: objectives %q, windows %q", *sloObjective, *sloWindows)
	}

	// Observability knobs: span sampling, ring size, tail sampling,
	// exemplars, audit sink, delivery spans. The tracer swap must precede
	// MetricsRegistry (the registry captures the tracer's counters), and
	// all of it happens here, before traffic starts.
	if *traceBuf != obs.DefaultRingSize {
		srv.Obs.Tracer = obs.NewTracer(*traceBuf)
	}
	srv.Obs.Tracer.SetSampleRate(*sample)
	srv.Obs.Tracer.SetTailSlow(*tailSlow)
	if *exemplars {
		srv.Obs.SetExemplars(true)
		srv.MetricsRegistry().SetExemplars(true)
	}
	if audit != nil {
		srv.Obs.SetAudit(audit)
	}
	// Delivery spans: the outbox records one child span per traced
	// request it processes (queue wait, attempts, retries).
	outbox.SetSpanSink(srv.Obs)

	var snap *resilience.Snapshotter
	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := srv.RestorePHL(f); err != nil {
				f.Close()
				log.Fatalf("lbserve: restoring %s: %v", *snapshot, err)
			}
			f.Close()
			log.Printf("restored %d users / %d samples from %s",
				srv.Store().NumUsers(), srv.Store().NumSamples(), *snapshot)
		} else if !os.IsNotExist(err) {
			log.Fatalf("lbserve: %v", err)
		}
		snap = resilience.NewSnapshotter(*snapshot, *snapEvery, srv.WritePHLSnapshot)
		snap.Start()
		srv.SetSnapshotMetrics(snap.AgeSeconds, snap.Errors)
		log.Printf("snapshotting %s every %s", *snapshot, snap.Interval())
	}

	handler := httpapi.New(srv)
	handler.SetMaxInFlight(*maxInFlight)
	handler.SetMaxBodyBytes(*maxBody)
	handler.SetWireBatch(*wireBatch)
	handler.SetWireBatchMaxBodyBytes(*wireBatchBody)
	handler.SetOutbox(outbox)
	if !*wireBatch {
		log.Printf("binary wire batch endpoint disabled")
	}
	if snap != nil {
		// Three missed intervals without a successful snapshot marks the
		// server degraded on /healthz.
		handler.SetSnapshotAge(snap.AgeSeconds, 3*snap.Interval().Seconds())
	}
	if tiered != nil {
		handler.SetStorage(tiered)
	}
	// The re-identification canary: read-only LT-consistency probes over
	// recently forwarded requests, deferring to admission pressure (the
	// handler's saturation state is its pressure hook).
	var canaryStop chan struct{}
	if *sloOn && *canaryEvery > 0 {
		canary := slo.NewCanary(slo.CanaryOptions{
			Store:    srv.Store(),
			Interval: *canaryEvery,
			Pressure: handler.UnderPressure,
		})
		srv.SLO.AttachCanary(canary)
		canaryStop = make(chan struct{})
		go canary.Run(canaryStop)
		log.Printf("re-identification canary probing every %s", *canaryEvery)
	}
	wto := *writeTimeout
	if *pprofOn {
		handler.EnablePprof()
		// CPU profiles stream for their whole duration; leave room for
		// /debug/pprof/profile?seconds=30.
		if wto < 60*time.Second {
			wto = 60 * time.Second
		}
		log.Printf("pprof enabled under /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadTimeout:       *readTimeout,
		ReadHeaderTimeout: *readHdrTO,
		WriteTimeout:      wto,
		IdleTimeout:       *idleTimeout,
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		// Shutdown order: stop the periodic loop, write the final
		// snapshot, drain the delivery queue, flush the audit log (the
		// drain can append drop events), then close the listener.
		if canaryStop != nil {
			close(canaryStop)
		}
		if snap != nil {
			snap.Stop()
			if err := snap.Save(); err != nil {
				log.Printf("lbserve: saving snapshot: %v", err)
			} else {
				log.Printf("snapshot written to %s", *snapshot)
			}
		}
		outbox.Close()
		if tiered != nil {
			if err := tiered.Close(); err != nil {
				log.Printf("lbserve: closing storage: %v", err)
			} else {
				log.Printf("storage checkpointed to %s", *walDir)
			}
		}
		if err := audit.Close(); err != nil {
			log.Printf("lbserve: closing audit log: %v", err)
		}
		httpSrv.Close()
	}()

	fmt.Printf("lbserve: trusted server listening on %s (k=%d)\n", *addr, *k)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("lbserve: %v", err)
	}
}
