// Command lbserve runs the trusted server as an HTTP daemon — the
// deployable form of the paper's Fig. 1. Devices POST location updates
// and service requests; forwarded requests are printed (or discarded)
// on the SP side.
//
// Usage:
//
//	lbserve -addr :7408 -k 5 -print-forwarded
//	curl -s localhost:7408/healthz
//	curl -s -XPOST localhost:7408/v1/request -d '{"user":1,"x":10,"y":10,"t":25500,"service":"navigation"}'
//
// Observability (see OBSERVABILITY.md for the full reference):
//
//	lbserve -trace-sample 0.01 -audit audit.jsonl -pprof
//	curl -s localhost:7408/metrics     # Prometheus text exposition
//	curl -s localhost:7408/v1/spans    # recent sampled request spans
//	go tool pprof localhost:7408/debug/pprof/profile?seconds=10
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"histanon/internal/httpapi"
	"histanon/internal/mixzone"
	"histanon/internal/obs"
	"histanon/internal/policy"
	"histanon/internal/ts"
	"histanon/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":7408", "listen address")
		k          = flag.Int("k", 5, "default historical anonymity value")
		randomize  = flag.Int64("randomize", 0, "seed for the randomization defense (0 = off)")
		policyFile = flag.String("policies", "", "rule-based policy file (see internal/policy)")
		printFwd   = flag.Bool("print-forwarded", false, "log every request forwarded to the SP side")
		snapshot   = flag.String("snapshot", "", "PHL snapshot file: loaded at boot, written on SIGINT/SIGTERM")
		sample     = flag.Float64("trace-sample", 0.01, "fraction of requests to trace into /v1/spans and the stage histograms (0 = off, 1 = all)")
		traceBuf   = flag.Int("trace-buffer", obs.DefaultRingSize, "span ring-buffer capacity")
		auditPath  = flag.String("audit", "", "privacy audit log (JSON lines), appended; flushed on SIGINT/SIGTERM")
		pprofOn    = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ (operator networks only)")
	)
	flag.Parse()

	cfg := ts.Config{
		DefaultPolicy: ts.Policy{K: *k},
		OnDemand: mixzone.OnDemand{
			Quiet:          600,
			Divergence:     mixzone.Divergence{MinAngle: 0.3},
			FallbackRadius: 800,
		},
		RandomizeSeed: *randomize,
	}
	if *policyFile != "" {
		f, err := os.Open(*policyFile)
		if err != nil {
			log.Fatalf("lbserve: %v", err)
		}
		set, err := policy.Parse(f)
		f.Close()
		if err != nil {
			log.Fatalf("lbserve: parsing policies: %v", err)
		}
		cfg.Policies = set
		log.Printf("loaded %d policy rules", len(set.Rules))
	}

	out := ts.OutboxFunc(func(req *wire.Request) {
		if *printFwd {
			log.Printf("SP <- %s", req)
		}
	})
	srv := ts.New(cfg, out)

	// Observability knobs: span sampling, ring size, audit sink. All are
	// safe to configure here, before traffic starts.
	if *traceBuf != obs.DefaultRingSize {
		srv.Obs.Tracer = obs.NewTracer(*traceBuf)
	}
	srv.Obs.Tracer.SetSampleRate(*sample)
	var audit *obs.AuditLog
	if *auditPath != "" {
		f, err := os.OpenFile(*auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("lbserve: opening audit log: %v", err)
		}
		audit = obs.NewAuditLog(f)
		srv.Obs.SetAudit(audit)
		log.Printf("audit log appending to %s", *auditPath)
	}

	if *snapshot != "" {
		if f, err := os.Open(*snapshot); err == nil {
			if err := srv.RestorePHL(f); err != nil {
				f.Close()
				log.Fatalf("lbserve: restoring %s: %v", *snapshot, err)
			}
			f.Close()
			log.Printf("restored %d users / %d samples from %s",
				srv.Store().NumUsers(), srv.Store().NumSamples(), *snapshot)
		} else if !os.IsNotExist(err) {
			log.Fatalf("lbserve: %v", err)
		}
	}

	handler := httpapi.New(srv)
	writeTimeout := 10 * time.Second
	if *pprofOn {
		handler.EnablePprof()
		// CPU profiles stream for their whole duration; leave room for
		// /debug/pprof/profile?seconds=30.
		writeTimeout = 60 * time.Second
		log.Printf("pprof enabled under /debug/pprof/")
	}
	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  10 * time.Second,
		WriteTimeout: writeTimeout,
	}

	if *snapshot != "" || audit != nil {
		sigCh := make(chan os.Signal, 1)
		signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigCh
			if *snapshot != "" {
				if err := saveSnapshot(srv, *snapshot); err != nil {
					log.Printf("lbserve: saving snapshot: %v", err)
				} else {
					log.Printf("snapshot written to %s", *snapshot)
				}
			}
			if err := audit.Close(); err != nil {
				log.Printf("lbserve: closing audit log: %v", err)
			}
			httpSrv.Close()
		}()
	}

	fmt.Printf("lbserve: trusted server listening on %s (k=%d)\n", *addr, *k)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("lbserve: %v", err)
	}
}

// saveSnapshot writes atomically: temp file then rename, so a crash
// mid-write never clobbers the previous snapshot.
func saveSnapshot(srv *ts.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.WritePHLSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
