// Command lbsim runs one end-to-end scenario — synthetic city, trusted
// server, adversarial service provider — and prints a privacy/QoS
// report.
//
// Usage:
//
//	lbsim -users 120 -days 14 -k 5 -tolerance 1000 -window 900
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"histanon/internal/generalize"
	"histanon/internal/link"
	"histanon/internal/sim"
	"histanon/internal/sp"
	"histanon/internal/ts"
)

func main() {
	var (
		users     = flag.Int("users", 120, "city population")
		days      = flag.Int("days", 14, "simulated days (starting on a Monday)")
		k         = flag.Int("k", 5, "historical anonymity value")
		initial   = flag.Int("kprime", 0, "initial witness over-provisioning k' (0 = k)")
		tolerance = flag.Float64("tolerance", 0, "service tolerance: max cloak side in meters (0 = unlimited)")
		window    = flag.Int64("window", 0, "service tolerance: max cloak window in seconds (0 = unlimited)")
		seed      = flag.Int64("seed", 1, "workload seed")
		track     = flag.Bool("lbqids", true, "attach commute LBQIDs to commuters")
		attack    = flag.Bool("attack", true, "run the re-identification attack afterwards")
	)
	flag.Parse()

	cfg := sim.DefaultScenario()
	cfg.Mobility.Users = *users
	cfg.Mobility.Days = *days
	cfg.Mobility.Seed = *seed
	cfg.TrackLBQIDs = *track
	cfg.Policy = ts.Policy{K: *k}
	if *initial > *k {
		cfg.Policy.Decay = generalize.DecaySchedule{Target: *k, Initial: *initial, Step: 1}
	}
	if *tolerance > 0 || *window > 0 {
		cfg.Tolerance = generalize.Tolerance{
			MaxWidth: *tolerance, MaxHeight: *tolerance, MaxDuration: *window,
		}
	}

	res := sim.Run(cfg)

	fmt.Printf("scenario: %d users, %d days, k=%d, seed=%d\n",
		*users, *days, *k, *seed)
	fmt.Printf("events: %d (requests: %d)\n", len(res.World.Events), len(res.Requests))
	fmt.Printf("counters: %s\n", res.Server.Counters)
	area, interval := res.GeneralizedStats()
	if area.N() > 0 {
		fmt.Printf("generalized area (km^2): mean=%.3f p95=%.3f\n",
			area.Mean()/1e6, area.Quantile(0.95)/1e6)
		fmt.Printf("generalized window (s): mean=%.0f p95=%.0f\n",
			interval.Mean(), interval.Quantile(0.95))
	}
	if fr := res.FailureRate(); !math.IsNaN(fr) {
		fmt.Printf("generalization failure rate: %.2f%%\n", 100*fr)
	}
	fmt.Printf("unlinkings per user-day: %.4f\n", res.UnlinkingsPerUserDay())

	if !*attack {
		return
	}
	attacker := &sp.Attacker{
		Knowledge: res.Server.Store(),
		Linker:    link.Max{link.Pseudonym{}, link.Tracking{}},
		Theta:     0.6,
	}
	rep := attacker.Attack(res.Provider)
	fmt.Printf("attack (pseudonym+tracking, theta=0.6): %d linked groups, %d identified, mean |AS|=%.1f\n",
		len(rep.Groups), rep.IdentifiedGroups(), rep.MeanAnonymity())

	series := res.ExposedSeries()
	if len(series) > 0 {
		minAS, ident := -1, 0
		pure := &sp.Attacker{Knowledge: res.Server.Store()}
		for _, reqs := range series {
			g := pure.AttackSeries(reqs)
			if minAS < 0 || len(g.Candidates) < minAS {
				minAS = len(g.Candidates)
			}
			if g.Identified {
				ident++
			}
		}
		fmt.Printf("exposed LBQID series: %d users, min |AS|=%d, identified=%d (Theorem 1 expects min >= k and 0 identified)\n",
			len(series), minAS, ident)
		if minAS < *k || ident > 0 {
			fmt.Fprintln(os.Stderr, "WARNING: historical k-anonymity violated for some series")
			os.Exit(1)
		}
	}
}
