// Command tracegen emits synthetic mobility traces as CSV
// (user,t,x,y,request,service), the input format of lbqidc -trace.
//
// Usage:
//
//	tracegen -users 50 -days 7 -seed 3 -o trace.csv
//	tracegen -requests-only            # only the service-request events
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"histanon/internal/mobility"
)

func main() {
	cfg := mobility.DefaultConfig()
	var (
		out          = flag.String("o", "-", "output file (default stdout)")
		requestsOnly = flag.Bool("requests-only", false, "emit only request events")
	)
	flag.IntVar(&cfg.Users, "users", cfg.Users, "city population")
	flag.IntVar(&cfg.Days, "days", cfg.Days, "simulated days")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Float64Var(&cfg.Width, "width", cfg.Width, "city width (m)")
	flag.Float64Var(&cfg.Height, "height", cfg.Height, "city height (m)")
	flag.Float64Var(&cfg.CommuterFrac, "commuters", cfg.CommuterFrac, "fraction of commuter agents")
	flag.Parse()

	world := mobility.Generate(cfg)
	events := world.Events
	if *requestsOnly {
		events = world.Requests()
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := mobility.WriteCSV(bw, events); err != nil {
		fail(err)
	}
	if err := bw.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d events for %d users over %d days\n",
		len(events), cfg.Users, cfg.Days)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
