// Command lbdeploy answers the paper's deployment question (§7,
// direction (b)): is a service with the given tolerance constraints and
// anonymity demand deployable in an area, given the area's typical
// movement patterns?
//
// Movement data comes either from a trace CSV (tracegen / real data in
// the same format) or from a synthetic city generated on the fly.
//
// Usage:
//
//	lbdeploy -trace city.csv -k 5 -tolerance 1000 -window 900
//	lbdeploy -users 200 -days 7 -k 10 -tolerance 500 -window 300
package main

import (
	"flag"
	"fmt"
	"os"

	"histanon/internal/deploy"
	"histanon/internal/generalize"
	"histanon/internal/geo"
	"histanon/internal/mixzone"
	"histanon/internal/mobility"
	"histanon/internal/phl"
)

func main() {
	var (
		trace     = flag.String("trace", "", "trace CSV with the area's movement data")
		users     = flag.Int("users", 150, "synthetic population (when no trace is given)")
		days      = flag.Int("days", 7, "synthetic days")
		seed      = flag.Int64("seed", 1, "synthetic seed")
		k         = flag.Int("k", 5, "anonymity value users will demand")
		tolerance = flag.Float64("tolerance", 1000, "service tolerance: max cloak side (m), 0 = unlimited")
		window    = flag.Int64("window", 900, "service tolerance: max cloak window (s), 0 = unlimited")
		target    = flag.Float64("target", 0.9, "required feasibility fraction")
	)
	flag.Parse()

	store := phl.NewStore()
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			fail(err)
		}
		events, err := mobility.ReadCSV(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		for _, ev := range events {
			store.Record(ev.User, ev.Point)
		}
		fmt.Printf("loaded %d events for %d users from %s\n", len(events), store.NumUsers(), *trace)
	} else {
		cfg := mobility.DefaultConfig()
		cfg.Users = *users
		cfg.Days = *days
		cfg.Seed = *seed
		world := mobility.Generate(cfg)
		for _, ev := range world.Events {
			store.Record(ev.User, ev.Point)
		}
		fmt.Printf("generated %d users over %d days (seed %d)\n", *users, *days, *seed)
	}

	tol := generalize.Tolerance{}
	if *tolerance > 0 {
		tol.MaxWidth, tol.MaxHeight = *tolerance, *tolerance
	}
	if *window > 0 {
		tol.MaxDuration = *window
	}
	rep, err := deploy.Analyze(deploy.Input{
		Store:          store,
		Metric:         geo.STMetric{TimeScale: 1},
		K:              *k,
		Tolerance:      tol,
		Divergence:     mixzone.Divergence{MinAngle: 0.3},
		FeasibleTarget: *target,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nservice: tolerance %gx%g m, %d s window; k=%d; target %.0f%%\n\n",
		tol.MaxWidth, tol.MaxHeight, tol.MaxDuration, *k, 100**target)
	fmt.Println(rep.Format())
	if rep.Verdict == deploy.NotDeployable {
		os.Exit(1)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lbdeploy: %v\n", err)
	os.Exit(1)
}
