// Command lbbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	lbbench             # run the whole suite (E1..E10)
//	lbbench -e E2,E6    # run selected experiments
//	lbbench -md         # emit GitHub-flavored markdown instead of text
//	lbbench -list       # list experiment ids and titles
//	lbbench -bench11 BENCH_e11.json
//	                    # run the concurrent-throughput benchmark and
//	                    # write the machine-readable perf record
//	lbbench -obsbench BENCH_obs.json
//	                    # run the E-obs instrumentation-overhead benchmark
//	                    # (sampling off / tail 1/1000 / 100% / 100%+exemplars
//	                    # / 100%+audit) and write its record; the table goes
//	                    # to stdout
//	lbbench -wirebench BENCH_wire.json
//	                    # run the E-wire binary-protocol benchmark (text vs
//	                    # binary codec round-trips, JSON vs batched binary
//	                    # ingest) and write its record
//	lbbench -compbench BENCH_comp.json
//	                    # run the §E-comp suite: million-agent streaming
//	                    # workloads over every scenario shape, plus the
//	                    # four-approach privacy-vs-QoS comparison; writes
//	                    # the record and prints both tables
//	lbbench -storagebench BENCH_storage.json
//	                    # run the E-storage durability benchmark on a temp
//	                    # dir: WAL ingestion overhead vs the in-memory
//	                    # store per fsync policy, crash-recovery time for
//	                    # the 10⁶-update workload, post-recovery heap, and
//	                    # cold-read tail latency (-storage-n scales it)
//	lbbench -slobench BENCH_slo.json
//	                    # run the E-slo privacy-SLO-engine overhead
//	                    # benchmark (engine off / on / on+canary over the
//	                    # E11 hot path) and write its record
//	lbbench -benchdiff  # aggregate every checked-in BENCH_*.json into one
//	                    # performance-trajectory table (scripts/benchdiff.sh)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"histanon/internal/sim"
)

func main() {
	var (
		ids          = flag.String("e", "", "comma-separated experiment ids (default: all)")
		markdown     = flag.Bool("md", false, "render markdown tables")
		list         = flag.Bool("list", false, "list experiments and exit")
		bench11      = flag.String("bench11", "", "run the E11 concurrency benchmark and write its JSON record to this path")
		obsbench     = flag.String("obsbench", "", "run the E-obs instrumentation-overhead benchmark and write its JSON record to this path")
		wirebench    = flag.String("wirebench", "", "run the E-wire binary-protocol benchmark and write its JSON record to this path")
		compbench    = flag.String("compbench", "", "run the E-comp streaming + approach-comparison benchmark and write its JSON record to this path")
		storagebench = flag.String("storagebench", "", "run the E-storage durability benchmark and write its JSON record to this path")
		slobench     = flag.String("slobench", "", "run the E-slo privacy-SLO-engine overhead benchmark and write its JSON record to this path")
		storageN     = flag.Int("storage-n", 1_000_000, "E-storage workload size in location updates")
		benchdiff    = flag.Bool("benchdiff", false, "aggregate BENCH_*.json records into a performance-trajectory table")
	)
	flag.Parse()

	if *benchdiff {
		paths, err := filepath.Glob("BENCH_*.json")
		if err == nil {
			sort.Strings(paths)
			err = sim.WriteBenchDiff(paths, os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range sim.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	if *bench11 != "" {
		f, err := os.Create(*bench11)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		rep := sim.RunE11Bench()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		for _, tp := range rep.Throughput {
			fmt.Printf("goroutines=%d  %.0f req/s  (%.2fx, %d allocs/op)\n",
				tp.Goroutines, tp.OpsPerSec, tp.Speedup, tp.AllocsPerOp)
		}
		for _, hp := range rep.HotPaths {
			fmt.Printf("%-32s %8.0f ns/op %6d B/op %4d allocs/op\n",
				hp.Name, hp.NsPerOp, hp.BytesPerOp, hp.AllocsPerOp)
		}
		return
	}

	if *obsbench != "" {
		f, err := os.Create(*obsbench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		rep := sim.RunObsBench()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		for _, row := range rep.Rows {
			fmt.Printf("%-24s %8.0f req/s  %8.0f ns/op  %3d allocs/op  (%.3fx vs off)\n",
				row.Mode, row.OpsPerSec, row.NsPerOp, row.AllocsPerOp, row.VsOff)
		}
		return
	}

	if *wirebench != "" {
		f, err := os.Create(*wirebench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		rep := sim.RunWireBench()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		for _, row := range rep.Rows {
			fmt.Printf("%-28s %12.0f ops/s  %8.1f ns/op  %3d allocs/op  (%.2fx vs text)\n",
				row.Mode, row.OpsPerSec, row.NsPerOp, row.AllocsPerOp, row.VsText)
		}
		return
	}

	if *slobench != "" {
		f, err := os.Create(*slobench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		rep := sim.RunSLOBench()
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		for _, row := range rep.SLORows {
			fmt.Printf("%-24s %8.0f req/s  %8.0f ns/op  %3d allocs/op  (%.3fx vs off)\n",
				row.Mode, row.OpsPerSec, row.NsPerOp, row.AllocsPerOp, row.VsOff)
		}
		return
	}

	if *compbench != "" {
		f, err := os.Create(*compbench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		rep := sim.RunCompBench(sim.DefaultCompBenchOptions())
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err == nil {
			err = sim.CompStreamTable(rep).Render(os.Stdout)
		}
		if err == nil {
			err = sim.CompFrontierTable(rep).Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *storagebench != "" {
		dir, err := os.MkdirTemp("", "storagebench")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		rep, err := sim.RunStorageBench(dir, *storageN)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		f, err := os.Create(*storagebench)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		for _, row := range rep.StorageRows {
			switch {
			case row.RecoveryMs > 0:
				fmt.Printf("%-12s %9d records  %8.0f ms recovery  %6d replayed  %6.1f MB heap\n",
					row.Mode, row.Records, row.RecoveryMs, row.Replayed, row.HeapMB)
			case row.ColdP99Us > 0:
				fmt.Printf("%-12s %9d queries  %8.0f ns/op  p99 %.0f\u00b5s\n",
					row.Mode, row.Records, row.NsPerOp, row.ColdP99Us)
			default:
				fmt.Printf("%-12s %9d records  %8.0f ops/s  %8.0f ns/op  (%.3fx vs memory, %d fsyncs)\n",
					row.Mode, row.Records, row.OpsPerSec, row.NsPerOp, row.VsMemory, row.Fsyncs)
			}
		}
		return
	}

	var selected []sim.Experiment
	if *ids == "" {
		selected = sim.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(id)
			e, ok := sim.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "lbbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		table := e.Run()
		var err error
		if *markdown {
			err = table.Markdown(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s took %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
}
