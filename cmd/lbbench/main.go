// Command lbbench regenerates the experiment tables of EXPERIMENTS.md.
//
// Usage:
//
//	lbbench             # run the whole suite (E1..E10)
//	lbbench -e E2,E6    # run selected experiments
//	lbbench -md         # emit GitHub-flavored markdown instead of text
//	lbbench -list       # list experiment ids and titles
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"histanon/internal/sim"
)

func main() {
	var (
		ids      = flag.String("e", "", "comma-separated experiment ids (default: all)")
		markdown = flag.Bool("md", false, "render markdown tables")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range sim.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []sim.Experiment
	if *ids == "" {
		selected = sim.All()
	} else {
		for _, id := range strings.Split(*ids, ",") {
			id = strings.TrimSpace(id)
			e, ok := sim.ByID(strings.ToUpper(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "lbbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		start := time.Now()
		table := e.Run()
		var err error
		if *markdown {
			err = table.Markdown(os.Stdout)
		} else {
			err = table.Render(os.Stdout)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "lbbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[%s took %.1fs]\n", e.ID, time.Since(start).Seconds())
	}
}
