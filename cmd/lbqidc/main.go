// Command lbqidc is the LBQID compiler: it parses quasi-identifier
// definitions, validates and explains them, and optionally replays a
// trace file against them to report matches.
//
// Usage:
//
//	lbqidc patterns.lbqid                     # parse + explain
//	lbqidc -trace trace.csv -user 3 patterns.lbqid
//	lbqidc -mine -trace trace.csv             # derive candidate LBQIDs
package main

import (
	"flag"
	"fmt"
	"os"

	"histanon/internal/lbqid"
	"histanon/internal/mine"
	"histanon/internal/mobility"
	"histanon/internal/phl"
	"histanon/internal/tgran"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace CSV (from tracegen) to replay against the patterns")
		user      = flag.Int64("user", -1, "user id whose events are replayed (default: all users, separately)")
		doMine    = flag.Bool("mine", false, "derive candidate LBQIDs from the trace instead of matching")
		minDays   = flag.Int("min-days", 3, "mining: minimum recurring days per haunt")
		maxShare  = flag.Int("max-sharers", 2, "mining: maximum users sharing a pattern before it is non-identifying")
	)
	flag.Parse()
	if *doMine {
		if *tracePath == "" {
			fmt.Fprintln(os.Stderr, "usage: lbqidc -mine -trace file.csv")
			os.Exit(2)
		}
		runMine(*tracePath, *minDays, *maxShare)
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: lbqidc [-trace file.csv [-user N]] patterns.lbqid")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	defer f.Close()
	patterns, err := lbqid.Parse(f)
	if err != nil {
		fail(err)
	}
	for _, q := range patterns {
		explain(q)
	}
	if *tracePath == "" {
		return
	}

	tf, err := os.Open(*tracePath)
	if err != nil {
		fail(err)
	}
	defer tf.Close()
	events, err := mobility.ReadCSV(tf)
	if err != nil {
		fail(err)
	}

	byUser := map[phl.UserID][]mobility.Event{}
	for _, ev := range events {
		if *user >= 0 && int64(ev.User) != *user {
			continue
		}
		byUser[ev.User] = append(byUser[ev.User], ev)
	}
	for u, evs := range byUser {
		for _, q := range patterns {
			m := lbqid.NewMatcher(q)
			var id lbqid.RequestID
			satisfiedAt := int64(-1)
			for _, ev := range evs {
				id++
				out := m.Offer(id, ev.Point)
				if out.Satisfied && satisfiedAt < 0 {
					satisfiedAt = ev.Point.T
				}
			}
			status := "no match"
			if satisfiedAt >= 0 {
				status = fmt.Sprintf("MATCHED at t=%d (%s)", satisfiedAt, tgran.ToCivil(satisfiedAt).Format("2006-01-02 15:04"))
			} else if m.Observations() > 0 {
				status = fmt.Sprintf("partial: %d observations, recurrence progress %d/%d",
					m.Observations(), m.Progress(), len(q.Recurrence.Terms))
			}
			fmt.Printf("user %d vs %q: %s\n", u, q.Name, status)
		}
	}
}

func explain(q *lbqid.LBQID) {
	fmt.Printf("lbqid %q: %d elements, recurrence %s\n", q.Name, len(q.Elements), q.Recurrence)
	for i, e := range q.Elements {
		name := e.Name
		if name == "" {
			name = fmt.Sprintf("element %d", i)
		}
		fmt.Printf("  %d. %-20s area %.0fx%.0f m at %s, window %s\n",
			i, name, e.Area.Width(), e.Area.Height(), e.Area.Center(), e.Window)
	}
}

// runMine derives candidate quasi-identifiers from a trace (§4: "the
// derivation process will have to be based on statistical analysis of
// the data about users movement history").
func runMine(tracePath string, minDays, maxSharers int) {
	f, err := os.Open(tracePath)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	events, err := mobility.ReadCSV(f)
	if err != nil {
		fail(err)
	}
	store := phl.NewStore()
	for _, ev := range events {
		store.Record(ev.User, ev.Point)
	}
	cands := mine.Mine(store, mine.Config{
		WeekdaysOnly: true,
		MinDays:      minDays,
		MaxSharers:   maxSharers,
	})
	if len(cands) == 0 {
		fmt.Println("# no distinctive recurring patterns found")
		return
	}
	fmt.Printf("# %d candidate LBQIDs mined from %d users\n", len(cands), store.NumUsers())
	for _, c := range cands {
		fmt.Printf("\n# user %d: %d supporting days, shared by %d other users\n",
			int64(c.User), c.SupportDays, c.Sharers)
		fmt.Print(c.Pattern.Spec())
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lbqidc: %v\n", err)
	os.Exit(1)
}
