// Nearesthospital: the tolerance-constraint scenario of the paper's
// §6.1. "Consider a service that returns information on the closest
// hospital. For the service to be useful, it should receive as input a
// user location that is at most in the range of a few square miles, and
// a time-window ... of at most a few minutes."
//
// The service provider computes its answer from the *generalized*
// context (the only view it has) and returns it through the trusted
// server's msgid routing — Fig. 1's full loop. Running the same request
// under increasingly strict tolerances shows the trade-off: a cloak
// small enough for an accurate answer may be too small to hide the user
// among k others.
//
// Run with:
//
//	go run ./examples/nearesthospital
package main

import (
	"fmt"
	"math"

	"histanon"
)

// hospital is the service-side database.
type hospital struct {
	name string
	pos  histanon.Point
}

var hospitals = []hospital{
	{"St. Mary", histanon.Point{X: 900, Y: 800}},
	{"City General", histanon.Point{X: 3100, Y: 2900}},
	{"Northside Clinic", histanon.Point{X: 600, Y: 3500}},
}

// nearestTo resolves the closest hospital to a point.
func nearestTo(c histanon.Point) hospital {
	best, bestD := hospitals[0], math.Inf(1)
	for _, h := range hospitals {
		if d := h.pos.Dist(c); d < bestD {
			best, bestD = h, d
		}
	}
	return best
}

func main() {
	exact := histanon.Point{X: 1200, Y: 1100}
	truth := nearestTo(exact)
	fmt.Printf("user's true position: %s; true nearest hospital: %s\n\n", exact, truth.name)

	for _, tol := range []struct {
		label string
		t     histanon.Tolerance
	}{
		{"unlimited resolution", histanon.Tolerance{}},
		{"4 km x 4 km, 10 min", histanon.Tolerance{MaxWidth: 4000, MaxHeight: 4000, MaxDuration: 600}},
		{"500 m x 500 m, 2 min", histanon.Tolerance{MaxWidth: 500, MaxHeight: 500, MaxDuration: 120}},
	} {
		provider := histanon.NewProvider()
		server := histanon.NewTrustedServer(histanon.Config{
			Services: map[string]histanon.ServiceSpec{
				"nearest-hospital": {Name: "nearest-hospital", Tolerance: tol.t},
			},
		}, provider)

		// The SP answers from the blurred area's center — all it knows.
		provider.Respond(map[string]histanon.ServiceLogic{
			"nearest-hospital": histanon.ServiceLogicFunc(func(req *histanon.Request) map[string]string {
				return map[string]string{"hospital": nearestTo(req.Context.Area.Center()).name}
			}),
		}, server.DeliverResponse)

		const user = histanon.UserID(0)
		server.RegisterUser(user, histanon.Policy{K: 4})
		var answer string
		server.SetInbox(user, histanon.InboxFunc(func(r *histanon.Response) {
			answer = r.Payload["hospital"]
		}))
		if err := server.AddLBQIDSpec(user, `
lbqid "hospital-visits" {
    element "Clinic block" area [1000,1400]x[900,1300] time [09:00,12:00]
    recurrence 2.Days
}`); err != nil {
			panic(err)
		}

		// Neighbors spread over ~1.5 km: hiding among them needs a cloak
		// bigger than the strictest tolerance allows.
		for u := histanon.UserID(1); u <= 6; u++ {
			server.RecordLocation(u, histanon.STPoint{
				P: histanon.Point{X: 1200 + float64(u)*260, Y: 1100 + float64(u)*200},
				T: 9*histanon.Hour + int64(u)*90,
			})
		}

		dec := server.Request(user,
			histanon.STPoint{P: exact, T: 9*histanon.Hour + 300},
			"nearest-hospital", nil)

		fmt.Printf("tolerance %-22s -> ", tol.label)
		if !dec.Forwarded {
			fmt.Println("request withheld")
			continue
		}
		fmt.Printf("cloak %.2f km^2, answer %q", dec.Request.Context.Area.Area()/1e6, answer)
		switch {
		case dec.HKAnonymity && answer == truth.name:
			fmt.Println("  [private AND accurate]")
		case dec.HKAnonymity:
			fmt.Println("  [private, answer degraded]")
		case answer == truth.name:
			fmt.Println("  [accurate, but k-anonymity NOT preserved -> TS unlinks next]")
		default:
			fmt.Println("  [neither]")
		}
	}
}
