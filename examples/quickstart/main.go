// Quickstart: a single user, one LBQID, and a trusted server that
// generalizes the matching requests.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"histanon"
)

func main() {
	// The service provider: in production a remote party; here a
	// recorder so we can inspect what it would learn.
	provider := histanon.NewProvider()
	server := histanon.NewTrustedServer(histanon.Config{}, provider)

	// Alice (user 1) wants medium privacy and declares her commute
	// pattern as a quasi-identifier (paper Example 1/2).
	const alice = histanon.UserID(1)
	server.RegisterUser(alice, histanon.PolicyForLevel(histanon.Medium))
	err := server.AddLBQIDSpec(alice, `
lbqid "commute" {
    element "Home"   area [0,200]x[0,200]     time [07:00,08:00]
    element "Office" area [1800,2200]x[0,200] time [08:00,09:00]
    recurrence 3.Weekdays * 2.Weeks
}`)
	if err != nil {
		panic(err)
	}

	// A small crowd of neighbors shares Alice's morning pattern; the TS
	// needs their trajectories to build anonymity sets. Engine time 0 is
	// Monday 00:00; 7.2*3600 is 07:12.
	for u := histanon.UserID(2); u <= 9; u++ {
		dx := float64(u) * 12
		server.RecordLocation(u, histanon.STPoint{
			P: histanon.Point{X: 40 + dx, Y: 30 + dx/2}, T: 7*histanon.Hour + int64(u)*40,
		})
		server.RecordLocation(u, histanon.STPoint{
			P: histanon.Point{X: 1900 + dx, Y: 30 + dx/2}, T: 8*histanon.Hour + int64(u)*40,
		})
	}

	// Alice's two morning requests: leaving home, arriving at the office.
	atHome := histanon.STPoint{P: histanon.Point{X: 50, Y: 40}, T: 7*histanon.Hour + 600}
	atOffice := histanon.STPoint{P: histanon.Point{X: 1950, Y: 40}, T: 8*histanon.Hour + 600}

	d1 := server.Request(alice, atHome, "navigation", map[string]string{"dest": "office"})
	d2 := server.Request(alice, atOffice, "news", nil)

	for i, d := range []histanon.Decision{d1, d2} {
		fmt.Printf("request %d: matched=%q generalized=%v hk-anonymity=%v\n",
			i+1, d.MatchedLBQID, d.Generalized, d.HKAnonymity)
	}

	fmt.Println("\nwhat the service provider sees:")
	for _, r := range provider.Requests() {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("\nnote: the SP sees a pseudonym and a blurred area/interval,")
	fmt.Println("wide enough that k users could have issued the requests.")
}
