// Adversary: the service-provider-side view. Runs the same commuter
// workload twice — once through a naive passthrough, once through the
// histanon trusted server — and attacks both logs with the paper's
// threat model (pseudonym linking + LT-consistency against the true
// location database).
//
// Run with:
//
//	go run ./examples/adversary
package main

import (
	"fmt"

	"histanon/internal/anon"
	"histanon/internal/geo"
	"histanon/internal/sim"
	"histanon/internal/ts"
)

func main() {
	const k = 5
	fmt.Println("workload: 80 users, 14 days, commuters with Example-2 LBQIDs")
	fmt.Printf("policy: historical k-anonymity with k=%d\n\n", k)

	cfg := sim.DefaultScenario()
	cfg.Mobility.Users = 80
	cfg.Policy = ts.Policy{K: k}
	res := sim.Run(cfg)

	// The attacker's external knowledge: who was where (worst case, the
	// full location database — think surveillance cameras, phone books,
	// employer records).
	knowledge := res.Server.Store()

	fmt.Println("=== attack 1: naive SP, exact locations (no trusted server) ===")
	naiveIdentified := 0
	commuters := 0
	for _, a := range res.World.Agents {
		if !a.Commuter {
			continue
		}
		commuters++
		// The naive SP sees every commute request at exact resolution.
		var boxes []geo.STBox
		for _, ev := range res.World.Requests() {
			if ev.User == a.User && ev.Service != "poi-finder" && ev.Service != "localized-news" {
				boxes = append(boxes, geo.STBoxAround(ev.Point))
			}
		}
		if len(boxes) == 0 {
			continue
		}
		if len(anon.HistoricalAnonymitySet(knowledge, boxes)) == 1 {
			naiveIdentified++
		}
	}
	fmt.Printf("commuters identified from exact request series: %d of %d\n\n",
		naiveIdentified, commuters)

	fmt.Println("=== attack 2: same knowledge vs the trusted server's output ===")
	series := res.ExposedSeries()
	fmt.Printf("fully exposed LBQID series: %d\n", len(series))
	identified, minAS := 0, -1
	for u, reqs := range series {
		boxes := make([]geo.STBox, len(reqs))
		for i, r := range reqs {
			boxes[i] = r.Context
		}
		as := anon.HistoricalAnonymitySet(knowledge, boxes)
		if minAS < 0 || len(as) < minAS {
			minAS = len(as)
		}
		if len(as) == 1 {
			identified++
			fmt.Printf("  user %v IDENTIFIED (should not happen)\n", u)
		}
	}
	fmt.Printf("identified: %d, smallest candidate set: %d (Theorem 1: >= k=%d)\n",
		identified, minAS, k)
	if identified == 0 && minAS >= k {
		fmt.Println("\n✓ the generalized series never collapses below k candidates:")
		fmt.Println("  the quasi-identifier was released, but it points at k people, not one.")
	}
}
