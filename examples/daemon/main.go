// Daemon: the deployment form of the paper's Fig. 1 — the trusted
// server running as a network service, a device-side client reporting
// locations and issuing requests over HTTP/JSON, and the service
// provider receiving only generalized contexts.
//
// The example starts the server in-process on an ephemeral port; in
// production the same wiring runs via cmd/lbserve.
//
// Run with:
//
//	go run ./examples/daemon
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"histanon"
)

func main() {
	// --- server side -----------------------------------------------------
	provider := histanon.NewProvider()
	server := histanon.NewTrustedServer(histanon.Config{
		DefaultPolicy: histanon.Policy{K: 4},
		RandomizeSeed: 1, // §7 randomization defense on
	}, provider)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(ln, histanon.NewAPIHandler(server)); err != nil {
			log.Printf("server stopped: %v", err)
		}
	}()
	base := "http://" + ln.Addr().String()
	fmt.Printf("trusted server listening on %s\n\n", base)

	// --- device side -------------------------------------------------------
	device := histanon.NewAPIClient(base)
	if err := device.SetPolicyLevel(1, "medium"); err != nil {
		log.Fatal(err)
	}
	if err := device.AddLBQID(1, `
lbqid "commute" {
    element "Home"   area [0,200]x[0,200]     time [07:00,08:00]
    element "Office" area [1800,2200]x[0,200] time [08:00,09:00]
    recurrence 3.Weekdays * 2.Weeks
}`); err != nil {
		log.Fatal(err)
	}

	// Neighbor devices report their morning locations.
	for u := int64(2); u <= 9; u++ {
		if err := device.RecordLocation(u, float64(40+u*12), float64(30+u*6), 7*histanon.Hour+u*40); err != nil {
			log.Fatal(err)
		}
	}

	// User 1 leaves home and asks for directions.
	dec, err := device.Request(histanon.ServiceRequestJSON{
		User: 1, X: 50, Y: 40, T: 7*histanon.Hour + 600,
		Service: "navigation", Data: map[string]string{"dest": "office"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device got decision: generalized=%v hk-anonymity=%v pseudonym=%s\n",
		dec.Generalized, dec.HKAnonymity, dec.Pseudonym)
	if dec.Context != nil {
		fmt.Printf("forwarded context: [%.0f,%.0f]x[%.0f,%.0f] over %d s\n",
			dec.Context.MinX, dec.Context.MaxX, dec.Context.MinY, dec.Context.MaxY,
			dec.Context.End-dec.Context.Start)
	}

	// The SP side saw only the blurred request.
	for _, r := range provider.Requests() {
		fmt.Printf("\nSP received: %s\n", r)
	}

	stats, err := device.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nserver stats: %d tracked users, counters %v\n",
		stats.TrackedUsers, stats.Counters)
}
