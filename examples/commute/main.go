// Commute: the paper's running example end to end. A city of commuters,
// the Example-2 LBQID ("home [7-8am] → office [8-9am] → office [4-6pm]
// → home [5-7pm], 3 weekdays a week for 2 weeks"), and a trusted server
// that keeps the pattern historically k-anonymous over two simulated
// weeks.
//
// Run with:
//
//	go run ./examples/commute
package main

import (
	"fmt"

	"histanon/internal/anon"
	"histanon/internal/geo"
	"histanon/internal/sim"
	"histanon/internal/ts"
)

func main() {
	cfg := sim.DefaultScenario()
	cfg.Mobility.Users = 100
	cfg.Mobility.Days = 14
	cfg.Policy = ts.Policy{K: 5}

	fmt.Println("simulating 100 users for 14 days; commuters carry the Example-2 LBQID...")
	res := sim.Run(cfg)

	fmt.Printf("events: %d, service requests: %d\n", len(res.World.Events), len(res.Requests))
	fmt.Printf("TS counters: %s\n", res.Server.Counters)

	// Pick one commuter whose quasi-identifier was fully matched.
	series := res.ExposedSeries()
	fmt.Printf("\n%d users completed their LBQID (2 weeks x 3 weekdays of commuting)\n", len(series))

	for u, reqs := range series {
		boxes := make([]geo.STBox, len(reqs))
		for i, r := range reqs {
			boxes[i] = r.Context
		}
		level := anon.HistoricalLevel(res.Server.Store(), u, boxes)
		fmt.Printf("\nuser %v: %d generalized requests under pseudonym %s\n",
			u, len(reqs), reqs[0].Pseudonym)
		fmt.Printf("  first forwarded context: %s\n", reqs[0].Context)
		fmt.Printf("  historical anonymity level of the whole series: %d (policy k=%d)\n",
			level, cfg.Policy.K)
		if level >= cfg.Policy.K {
			fmt.Println("  ✓ even knowing everyone's true movements, the service provider")
			fmt.Printf("    cannot narrow this commute pattern below %d candidates\n", level)
		}
		break // one user suffices for the demo
	}

	area, interval := res.GeneralizedStats()
	fmt.Printf("\nQoS cost of k=%d: mean cloak %.2f km^2, mean window %.0f s\n",
		cfg.Policy.K, area.Mean()/1e6, interval.Mean())
}
